//! `vlprof`: run any workload (or a raw `.s` program) under the full
//! observability stack and emit a Perfetto/Chrome trace, a metrics JSON
//! document (including CPI stacks), and a terminal summary of the top
//! stall causes per region.
//!
//! ```text
//! vlprof saxpy.s                      # profile an assembly file
//! vlprof mxm --config v4-cmp          # profile a suite workload
//! vlprof spmv --whatif all            # causal what-if speedup bounds
//! vlprof --diff base/metrics.json new/metrics.json
//! ```
//!
//! Both output documents are validated before they are written (the same
//! validators the test suite uses), so a malformed trace fails the run
//! instead of failing later inside `chrome://tracing`.
//!
//! `--whatif` is the causal layer: for a stall cause with a removable
//! hardware component it re-runs the workload with that component
//! idealized (zero-conflict L2 banks, zero-hop cluster network, free
//! barrier flushes, unbounded issue width) and reports the *measured*
//! speedup next to the cycles the profiler *attributed* to the cause.
//! The measured gain can never exceed the attribution (checked on every
//! run) — attribution is an upper bound, what-if is the causal truth.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use vlt_core::{EngineMode, IdealizeConfig, SimResult, StallCause, System, SystemConfig};
use vlt_obs::perfetto::validate_chrome_trace;
use vlt_obs::{CpiObserver, MetricsObserver, Multi, PerfettoObserver};
use vlt_stats::json::Json;
use vlt_stats::metrics::validate_metrics_json;
use vlt_stats::{MetricsRegistry, Table};
use vlt_workloads::{workload, Scale};

const USAGE: &str = "\
usage: vlprof <workload|file.s> [options]
       vlprof --diff A/metrics.json B/metrics.json

  <workload|file.s>   a suite workload name (mxm, sage, mpenc, trfd,
                      multprec, bt, radix, ocean, barnes, or the irregular
                      spmv, histo, hashjoin, sweep) or a path to a VLT
                      assembly file

options:
  --config NAME   design point: base, v2-smt, v2-cmp, v2-cmp-h, v4-smt,
                  v4-cmt, v4-cmp, v4-cmp-h, cmt, v4-cmt-lanes, or the
                  ultra-wide v8-2x8 / v8-4x8 / v8-8x8 (default: v4-cmt)
  --clusters N    replicate the config's vector unit over N lane clusters
                  (vector configs only; the trace gains per-cluster
                  partition tracks)
  --threads N     software threads (default: 4, the examples' shape)
  --scale S       workload problem size: test | small | full
                  (default: small; ignored for .s files)
  --engine E      functional engine: block (threaded-code blocks, the
                  default) | interp (the single-step oracle)
  --whatif CAUSE  after profiling, re-run with the hardware component
                  behind CAUSE idealized and report the measured speedup
                  against the attributed cycles: bank-conflict,
                  network-contention, barrier-wait, issue-width, or all
  --diff A B      compare two metrics.json documents (no simulation);
                  prints the counters that moved, largest swing first
  --out DIR       output directory for trace.json + metrics.json
                  (default: vlprof-out)
  -h, --help      this text";

struct Args {
    target: Option<String>,
    config: String,
    clusters: usize,
    threads: usize,
    scale: Scale,
    engine: EngineMode,
    whatif: Option<String>,
    diff: Option<(PathBuf, PathBuf)>,
    out: PathBuf,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    argv.next(); // program name
    let mut target = None;
    let mut config = "v4-cmt".to_string();
    let mut clusters = 1usize;
    let mut threads = 4usize;
    let mut scale = Scale::Small;
    let mut engine = EngineMode::default();
    let mut whatif = None;
    let mut diff = None;
    let mut out = PathBuf::from("vlprof-out");
    let next = |argv: &mut std::env::Args, flag: &str| {
        argv.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "-h" | "--help" => return Err(USAGE.to_string()),
            "--config" => config = next(&mut argv, "--config")?,
            "--clusters" => {
                clusters = next(&mut argv, "--clusters")?
                    .parse()
                    .ok()
                    .filter(|c: &usize| c.is_power_of_two())
                    .ok_or_else(|| "--clusters needs a power-of-two count".to_string())?;
            }
            "--threads" => {
                threads = next(&mut argv, "--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a positive integer".to_string())?;
            }
            "--scale" => {
                scale = match next(&mut argv, "--scale")?.as_str() {
                    "test" => Scale::Test,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    s => return Err(format!("unknown scale {s:?} (test | small | full)")),
                };
            }
            "--engine" => {
                engine = match next(&mut argv, "--engine")?.as_str() {
                    "block" => EngineMode::Block,
                    "interp" => EngineMode::Interp,
                    s => return Err(format!("unknown engine {s:?} (block | interp)")),
                };
            }
            "--whatif" => whatif = Some(next(&mut argv, "--whatif")?),
            "--diff" => {
                let a = PathBuf::from(next(&mut argv, "--diff")?);
                let b = argv.next().ok_or_else(|| "--diff needs two paths".to_string())?;
                diff = Some((a, PathBuf::from(b)));
            }
            "--out" => out = PathBuf::from(next(&mut argv, "--out")?),
            s if s.starts_with('-') => return Err(format!("unknown option {s}\n\n{USAGE}")),
            _ => {
                if target.replace(a).is_some() {
                    return Err("more than one workload given".to_string());
                }
            }
        }
    }
    if diff.is_none() && target.is_none() {
        return Err(USAGE.to_string());
    }
    if threads == 0 {
        return Err("--threads needs a positive integer".to_string());
    }
    Ok(Args { target, config, clusters, threads, scale, engine, whatif, diff, out })
}

/// Resolve a design-point name (case- and `-`/`_`-insensitive).
fn config_by_name(name: &str) -> Option<SystemConfig> {
    match name.to_ascii_lowercase().replace('_', "-").as_str() {
        "base" => Some(SystemConfig::base(8)),
        "v2-smt" => Some(SystemConfig::v2_smt()),
        "v2-cmp" => Some(SystemConfig::v2_cmp()),
        "v2-cmp-h" => Some(SystemConfig::v2_cmp_h()),
        "v4-smt" => Some(SystemConfig::v4_smt()),
        "v4-cmt" => Some(SystemConfig::v4_cmt()),
        "v4-cmp" => Some(SystemConfig::v4_cmp()),
        "v4-cmp-h" => Some(SystemConfig::v4_cmp_h()),
        "cmt" => Some(SystemConfig::cmt()),
        "v4-cmt-lanes" | "lane-threads" => Some(SystemConfig::v4_cmt_lane_threads()),
        "v8-2x8" => Some(SystemConfig::v8_clustered(2)),
        "v8-4x8" => Some(SystemConfig::v8_clustered(4)),
        "v8-8x8" => Some(SystemConfig::v8_clustered(8)),
        _ => None,
    }
}

/// The idealizable stall causes `--whatif` accepts, in report order.
const WHATIF_CAUSES: [StallCause; 4] = [
    StallCause::BankConflict,
    StallCause::NetworkContention,
    StallCause::BarrierWait,
    StallCause::IssueWidth,
];

fn whatif_causes(arg: &str) -> Result<Vec<StallCause>, String> {
    if arg == "all" {
        return Ok(WHATIF_CAUSES.to_vec());
    }
    WHATIF_CAUSES.iter().copied().find(|c| c.name() == arg).map(|c| vec![c]).ok_or_else(|| {
        let names: Vec<&str> = WHATIF_CAUSES.iter().map(|c| c.name()).collect();
        format!("--whatif {arg:?}: not an idealizable cause (one of {}, or all)", names.join(", "))
    })
}

/// The resolved profile target: a program plus an optional post-run
/// verifier (suite workloads verify; raw `.s` files run as-is).
struct Target {
    label: String,
    program: vlt_isa::Program,
    built: Option<vlt_workloads::Built>,
}

fn resolve_target(args: &Args, cfg: &SystemConfig) -> Result<Target, String> {
    let name = args.target.as_deref().expect("profile mode has a target");
    if name.ends_with(".s") {
        let src = std::fs::read_to_string(name).map_err(|e| format!("cannot read {name}: {e}"))?;
        let program = vlt_isa::asm::assemble(&src).map_err(|e| format!("{name}: {e}"))?;
        return Ok(Target { label: name.to_string(), program, built: None });
    }
    let w = workload(name)
        .ok_or_else(|| format!("{name:?} is neither a workload name nor a .s file\n\n{USAGE}"))?;
    // Spread the program's vltcfg over the machine's clusters so an
    // ultra-wide profile actually exercises every cluster.
    let built = w.build_spread(args.threads, cfg.clusters, args.scale);
    Ok(Target { label: w.name().to_string(), program: built.program.clone(), built: Some(built) })
}

/// One simulation of the target on `cfg`, verified, with conservation
/// checked. `run_observed` only when observers are attached.
fn simulate(
    cfg: &SystemConfig,
    target: &Target,
    threads: usize,
    engine: EngineMode,
    obs: Option<&mut Multi<'_>>,
) -> Result<SimResult, String> {
    let mut sys = System::new(cfg.clone(), &target.program, threads).with_engine(engine);
    let result = match obs {
        Some(multi) => sys.run_observed(vlt_bench::harness::MAX_CYCLES, multi),
        None => sys.run(vlt_bench::harness::MAX_CYCLES),
    }
    .map_err(|e| format!("simulation failed: {e}"))?;
    if let Some(built) = &target.built {
        (built.verifier)(sys.funcsim()).map_err(|m| format!("verification failed: {m}"))?;
    }
    result.check_stall_conservation().map_err(|e| format!("stall accounting broken: {e}"))?;
    Ok(result)
}

fn run(args: &Args) -> Result<(), String> {
    if let Some((a, b)) = &args.diff {
        return run_diff(a, b);
    }
    let mut cfg = config_by_name(&args.config)
        .ok_or_else(|| format!("unknown config {:?}\n\n{USAGE}", args.config))?;
    if args.clusters > 1 {
        if !cfg.has_vu || cfg.lane_threads {
            return Err(format!("{} has no vector unit to replicate over clusters", cfg.name));
        }
        cfg = cfg.with_clusters(args.clusters);
    }
    if args.threads > cfg.max_threads() {
        return Err(format!(
            "{} supports at most {} threads, got {}",
            cfg.name,
            cfg.max_threads(),
            args.threads
        ));
    }
    let causes = args.whatif.as_deref().map(whatif_causes).transpose()?;
    let target = resolve_target(args, &cfg)?;

    eprintln!("vlprof: {} on {} x{} ...", target.label, cfg.name, args.threads);
    let mut metrics = MetricsObserver::new();
    let mut trace = PerfettoObserver::new();
    let mut cpi = CpiObserver::new();
    let result = {
        let mut multi = Multi::new().with(&mut metrics).with(&mut trace).with(&mut cpi);
        simulate(&cfg, &target, args.threads, args.engine, Some(&mut multi))?
    };
    cpi.check_conservation().map_err(|e| format!("CPI stack not conserving: {e}"))?;

    // Validate both documents before writing anything.
    let mut metrics_doc = metrics.into_registry();
    cpi.export_into(&mut metrics_doc);
    let metrics_json = metrics_doc.to_json();
    validate_metrics_json(&metrics_json).map_err(|e| format!("metrics JSON invalid: {e}"))?;
    let trace_json = trace.into_json();
    validate_chrome_trace(&trace_json).map_err(|e| format!("trace JSON invalid: {e}"))?;

    std::fs::create_dir_all(&args.out)
        .map_err(|e| format!("cannot create {}: {e}", args.out.display()))?;
    for (name, doc) in [("trace.json", &trace_json), ("metrics.json", &metrics_json)] {
        let path = args.out.join(name);
        std::fs::write(&path, doc.pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote {}", path.display());
    }

    print_summary(&target.label, &cfg, &result, &metrics_doc);
    print_cpi(&cpi);
    if let Some(causes) = causes {
        run_whatif(&cfg, &target, args, &result, &causes)?;
    }
    Ok(())
}

/// Re-run the workload once per idealized cause and print measured
/// speedups next to the profiler's attribution. Errors if a measured
/// gain ever exceeds the attributed cycles — that would mean the stall
/// accounting undercounts the cause it claims to explain.
fn run_whatif(
    cfg: &SystemConfig,
    target: &Target,
    args: &Args,
    base: &SimResult,
    causes: &[StallCause],
) -> Result<(), String> {
    let mut t = Table::new(
        "What-if speedup bounds (component idealized vs measured)",
        &["idealization", "attributed", "base", "ideal", "speedup", "realized"],
    );
    for &cause in causes {
        let ideal =
            IdealizeConfig::for_cause(cause).expect("WHATIF_CAUSES only lists idealizable causes");
        let mut icfg = cfg.clone();
        icfg.ideal = ideal;
        eprintln!("vlprof: what-if {} ...", cause.name());
        let r = simulate(&icfg, target, args.threads, args.engine, None)?;
        let attributed = base.stalls().get(cause);
        let gain = base.cycles.saturating_sub(r.cycles);
        // The causal cross-check: removing a component can never buy more
        // cycles than the profiler attributed to it (attribution counts
        // every cycle the cause was *blamed* for; overlap with other
        // causes only shrinks the realizable gain).
        if gain > attributed {
            return Err(format!(
                "what-if {}: measured gain {gain} cycles exceeds the attributed {attributed} — \
                 stall attribution undercounts this cause",
                cause.name()
            ));
        }
        if r.cycles > base.cycles {
            eprintln!(
                "vlprof: note: idealizing {} slowed the run by {} cycles \
                 (timing interaction, e.g. altered barrier arrival order)",
                cause.name(),
                r.cycles - base.cycles
            );
        }
        let realized = if attributed == 0 { 0.0 } else { 100.0 * gain as f64 / attributed as f64 };
        t.row(&[
            cause.name().to_string(),
            attributed.to_string(),
            base.cycles.to_string(),
            r.cycles.to_string(),
            format!("{:.3}x", base.cycles as f64 / r.cycles.max(1) as f64),
            format!("{realized:.0}%"),
        ]);
    }
    println!("{t}");
    println!(
        "attributed counts are stall-cycles across all units (vector datapath-cycles \n\
         and core cycles); realized = measured gain / attributed, the causal share."
    );
    Ok(())
}

/// Per-region stall-cause counters out of the registry, keyed by region.
fn stalls_by_region(reg: &MetricsRegistry) -> BTreeMap<u32, Vec<(String, u64)>> {
    let mut per_region: BTreeMap<u32, Vec<(String, u64)>> = BTreeMap::new();
    for (name, v) in reg.counters() {
        let Some(rest) = name.strip_prefix("stalls.region") else { continue };
        let Some((region, cause)) = rest.split_once('.') else { continue };
        let Ok(region) = region.parse::<u32>() else { continue };
        per_region.entry(region).or_default().push((cause.to_string(), v));
    }
    for causes in per_region.values_mut() {
        causes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    }
    per_region
}

fn print_summary(label: &str, cfg: &SystemConfig, result: &SimResult, reg: &MetricsRegistry) {
    println!("{label} on {} — {} cycles, {} committed", cfg.name, result.cycles, result.committed);
    if cfg.has_vu {
        println!(
            "vector datapaths {:.1}% busy; {} vector issues",
            100.0 * result.utilization.busy_fraction(),
            reg.counter("vu.issues"),
        );
    }
    if reg.counter("barrier.releases") > 0 {
        println!("{} barrier rendezvous", reg.counter("barrier.releases"));
    }
    println!();

    let per_region = stalls_by_region(reg);
    let mut t = Table::new(
        "Top stall causes per region",
        &["region", "cycles", "stall-cycles", "top causes"],
    );
    for (region, causes) in &per_region {
        let total: u64 = causes.iter().map(|(_, n)| n).sum();
        let top = causes
            .iter()
            .take(3)
            .map(|(cause, n)| format!("{cause} {:.0}%", 100.0 * *n as f64 / total as f64))
            .collect::<Vec<_>>()
            .join(", ");
        t.row(&[
            region.to_string(),
            result.region_cycles.get(region).copied().unwrap_or(0).to_string(),
            total.to_string(),
            top,
        ]);
    }
    if t.is_empty() {
        println!("no stalled or idle cycles attributed (nothing ever waited)");
    } else {
        println!("{t}");
    }
}

/// Whole-run CPI stacks: each unit's cycle budget decomposed top-down,
/// largest components first. Exact — components sum to the budget.
fn print_cpi(cpi: &CpiObserver) {
    let mut t = Table::new("CPI stacks (whole run)", &["unit", "cycles", "composition"]);
    for s in cpi.total() {
        let mut parts = s.components();
        parts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let comp = parts
            .iter()
            .filter(|(_, n)| *n > 0)
            .take(4)
            .map(|(label, n)| format!("{label} {:.0}%", 100.0 * *n as f64 / s.cycles.max(1) as f64))
            .collect::<Vec<_>>()
            .join(", ");
        t.row(&[s.unit.clone(), s.cycles.to_string(), comp]);
    }
    if !t.is_empty() {
        println!("{t}");
    }
}

/// Load and validate a metrics.json document.
fn load_metrics(path: &PathBuf) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: malformed JSON: {e}", path.display()))?;
    validate_metrics_json(&doc)
        .map_err(|e| format!("{}: not a metrics document: {e}", path.display()))?;
    Ok(doc)
}

/// Flatten a metrics document into comparable scalar rows: every counter
/// by name, plus each histogram's `count` and `sum` moments.
fn scalar_rows(doc: &Json) -> BTreeMap<String, f64> {
    let mut rows = BTreeMap::new();
    if let Some(Json::Obj(counters)) = doc.get("counters") {
        for (k, v) in counters {
            if let Some(n) = v.as_f64() {
                rows.insert(k.clone(), n);
            }
        }
    }
    if let Some(Json::Obj(hists)) = doc.get("histograms") {
        for (k, h) in hists {
            for field in ["count", "sum"] {
                if let Some(n) = h.get(field).and_then(Json::as_f64) {
                    rows.insert(format!("{k}.{field}"), n);
                }
            }
        }
    }
    rows
}

/// `vlprof --diff A B`: every metric that moved between two runs,
/// largest relative swing first. A metric present on only one side
/// diffs against zero (new counters appear, dead ones disappear).
fn run_diff(a: &PathBuf, b: &PathBuf) -> Result<(), String> {
    let (da, db) = (load_metrics(a)?, load_metrics(b)?);
    let (ra, rb) = (scalar_rows(&da), scalar_rows(&db));
    let (ca, cb) = (ra.get("sim.cycles").copied(), rb.get("sim.cycles").copied());
    if let (Some(ca), Some(cb)) = (ca, cb) {
        println!(
            "sim.cycles: {ca} -> {cb} ({})",
            if cb > 0.0 { format!("{:.3}x", ca / cb) } else { "n/a".to_string() }
        );
        println!();
    }
    let mut moved: Vec<(String, f64, f64)> = Vec::new();
    for name in ra.keys().chain(rb.keys()) {
        if moved.iter().any(|(n, _, _)| n == name) {
            continue;
        }
        let va = ra.get(name).copied().unwrap_or(0.0);
        let vb = rb.get(name).copied().unwrap_or(0.0);
        if va != vb {
            moved.push((name.clone(), va, vb));
        }
    }
    let rel = |va: f64, vb: f64| (vb - va).abs() / va.abs().max(vb.abs()).max(1.0);
    moved.sort_by(|x, y| rel(y.1, y.2).partial_cmp(&rel(x.1, x.2)).unwrap().then(x.0.cmp(&y.0)));
    if moved.is_empty() {
        println!("no differing metrics: the two documents agree on every scalar");
        return Ok(());
    }
    const CAP: usize = 40;
    let mut t = Table::new(
        "Differing metrics (largest relative swing first)",
        &["metric", "A", "B", "delta"],
    );
    for (name, va, vb) in moved.iter().take(CAP) {
        t.row(&[name.clone(), format!("{va}"), format!("{vb}"), format!("{:+}", vb - va)]);
    }
    println!("{t}");
    if moved.len() > CAP {
        println!("... and {} more differing metrics", moved.len() - CAP);
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args(std::env::args()) {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("vlprof: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
