//! `vladvise` — static VLTCFG partition advisor over the workload suite.
//!
//! ```text
//! vladvise [--validate]
//! ```
//!
//! Runs the static DLP analyzer on every suite kernel (single-threaded
//! build, matching how `table4` characterizes them), prints the predicted
//! Table-4 profile with the advisor's recommended partition per workload
//! and per region, and writes `results/table4_static.json` (vlt-table v1).
//! The irregular kernel mix (SpMV, histogram, hash-join probe, multi-sweep
//! stencil) gets the same treatment as a second table, written to
//! `results/irregular_static.json`.
//!
//! With `--validate`, also measures the dynamic characterization, writes
//! `results/table4_dynamic.json` and `results/irregular_dynamic.json`, and
//! cross-checks static against dynamic (avg VL within 10%, % vectorization
//! within 5 points, top common VL exact, instruction count exact for exact
//! walks) — exiting 1 on any mismatch, so CI can gate releases on the
//! analyzer staying honest.
//!
//! Scale comes from `VLT_SCALE` (`test` | `small` | `full`), like every
//! other experiment binary.

use vlt_bench::experiments::{scale_from_env, table4_static as ex};

fn main() {
    let mut validate = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--validate" => validate = true,
            "-h" | "--help" => {
                println!("usage: vladvise [--validate]");
                return;
            }
            other => {
                eprintln!("vladvise: unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }

    let scale = scale_from_env();
    let results = vlt_bench::results_dir();

    let rows = ex::run(scale);
    print_static(&ex::static_table(&rows), &rows, &results, "table4_static");

    let irr = ex::run_irregular(scale);
    println!();
    print_static(&ex::irregular_static_table(&irr), &irr, &results, "irregular_static");

    if !validate {
        return;
    }

    println!("\nvalidating against the dynamic characterization...");
    let mut errs = Vec::new();
    let dyn_rows = ex::dynamic_rows(scale);
    let dt = ex::dynamic_table(&dyn_rows);
    println!("{dt}");
    write_table(&dt, &results, "table4_dynamic");
    errs.extend(ex::validate(&rows, &dyn_rows));

    let irr_dyn = ex::dynamic_rows_irregular(scale);
    let idt = ex::dynamic_table(&irr_dyn);
    println!("{idt}");
    write_table(&idt, &results, "irregular_dynamic");
    errs.extend(ex::validate(&irr, &irr_dyn));

    if errs.is_empty() {
        println!(
            "static analysis validated against dynamic runs for all {} kernels",
            rows.len() + irr.len()
        );
    } else {
        for e in &errs {
            eprintln!("vladvise: MISMATCH: {e}");
        }
        std::process::exit(1);
    }
}

fn print_static(
    t: &vlt_stats::Table,
    rows: &[ex::StaticRow],
    results: &std::path::Path,
    name: &str,
) {
    println!("{t}");
    for r in rows {
        let a = &r.advice;
        for reg in &a.regions {
            if reg.region == 0 {
                continue;
            }
            println!(
                "{}: region {}: {:?}, {:.1}% vectorized, avg VL {:.1}, best {} thread(s)",
                r.name,
                reg.region,
                reg.opportunity,
                reg.pct_vectorization,
                reg.avg_vl,
                reg.best_threads,
            );
        }
        let ranked: Vec<String> = a
            .ranking
            .iter()
            .map(|s| format!("{}x{} ({:.2}x)", s.threads, s.mvl, s.speedup))
            .collect();
        println!("{}: ranking: {}", r.name, ranked.join(" > "));
    }
    write_table(t, results, name);
}

fn write_table(t: &vlt_stats::Table, results: &std::path::Path, name: &str) {
    match t.write_to(results, name) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(err) => eprintln!("could not write results JSON: {err}"),
    }
}
