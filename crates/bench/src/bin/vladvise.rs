//! `vladvise` — static VLTCFG partition advisor over the workload suite.
//!
//! ```text
//! vladvise [--validate]
//! ```
//!
//! Runs the static DLP analyzer on every suite kernel (single-threaded
//! build, matching how `table4` characterizes them), prints the predicted
//! Table-4 profile with the advisor's recommended partition per workload
//! and per region, and writes `results/table4_static.json` (vlt-table v1).
//!
//! With `--validate`, also measures the dynamic characterization, writes
//! `results/table4_dynamic.json`, and cross-checks static against dynamic
//! (avg VL within 10%, % vectorization within 5 points, top common VL
//! exact, instruction count exact for exact walks) — exiting 1 on any
//! mismatch, so CI can gate releases on the analyzer staying honest.
//!
//! Scale comes from `VLT_SCALE` (`test` | `small` | `full`), like every
//! other experiment binary.

use vlt_bench::experiments::{scale_from_env, table4_static as ex};

fn main() {
    let mut validate = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--validate" => validate = true,
            "-h" | "--help" => {
                println!("usage: vladvise [--validate]");
                return;
            }
            other => {
                eprintln!("vladvise: unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }

    let scale = scale_from_env();
    let results = vlt_bench::results_dir();

    let rows = ex::run(scale);
    let t = ex::static_table(&rows);
    println!("{t}");
    for r in &rows {
        let a = &r.advice;
        for reg in &a.regions {
            if reg.region == 0 {
                continue;
            }
            println!(
                "{}: region {}: {:?}, {:.1}% vectorized, avg VL {:.1}, best {} thread(s)",
                r.name,
                reg.region,
                reg.opportunity,
                reg.pct_vectorization,
                reg.avg_vl,
                reg.best_threads,
            );
        }
        let ranked: Vec<String> = a
            .ranking
            .iter()
            .map(|s| format!("{}x{} ({:.2}x)", s.threads, s.mvl, s.speedup))
            .collect();
        println!("{}: ranking: {}", r.name, ranked.join(" > "));
    }
    match t.write_to(&results, "table4_static") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(err) => eprintln!("could not write results JSON: {err}"),
    }

    if !validate {
        return;
    }

    println!("\nvalidating against the dynamic characterization...");
    let dyn_rows = ex::dynamic_rows(scale);
    let dt = ex::dynamic_table(&dyn_rows);
    println!("{dt}");
    match dt.write_to(&results, "table4_dynamic") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(err) => eprintln!("could not write results JSON: {err}"),
    }
    let errs = ex::validate(&rows, &dyn_rows);
    if errs.is_empty() {
        println!("static analysis validated against dynamic runs for all {} kernels", rows.len());
    } else {
        for e in &errs {
            eprintln!("vladvise: MISMATCH: {e}");
        }
        std::process::exit(1);
    }
}
