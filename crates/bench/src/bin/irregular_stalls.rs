//! Standalone runner for the irregular-kernel stall profiles
//! (`results/irregular_stalls.json`).

fn main() {
    let scale = vlt_bench::experiments::scale_from_env();
    vlt_bench::experiments::emit_result(vlt_bench::experiments::irregular_stalls::run(scale));
}
