//! Regenerate fig6 of the paper. See `vlt_bench::experiments::fig6`.

fn main() {
    let scale = vlt_bench::experiments::scale_from_env();
    vlt_bench::experiments::emit_result(vlt_bench::experiments::fig6::run(scale));
}
