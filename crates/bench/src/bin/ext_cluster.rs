//! Extension study: multi-cluster ultra-wide VLT. See
//! `vlt_bench::experiments::ext_cluster`.

fn main() {
    let scale = vlt_bench::experiments::scale_from_env();
    vlt_bench::experiments::emit_result(vlt_bench::experiments::ext_cluster::run(scale));
}
