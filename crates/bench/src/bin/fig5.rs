//! Regenerate fig5 of the paper. See `vlt_bench::experiments::fig5`.

fn main() {
    let scale = vlt_bench::experiments::scale_from_env();
    vlt_bench::experiments::emit_result(vlt_bench::experiments::fig5::run(scale));
}
