//! Regenerate fig5 of the paper. See `vlt_bench::experiments::fig5`.

fn main() {
    let scale = vlt_bench::experiments::scale_from_env();
    let e = vlt_bench::experiments::fig5::run(scale);
    vlt_bench::experiments::emit(&e);
}
