//! Run every experiment, write all JSON records, and fail loudly if any
//! expected figure/table record is absent afterwards.

fn main() {
    use vlt_bench::experiments as ex;
    let scale = ex::scale_from_env();
    let results = vlt_bench::results_dir();
    let t3 = ex::table3::run();
    println!("{t3}");
    match t3.write_to(&results, "table3") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(err) => eprintln!("could not write results JSON: {err}"),
    }
    ex::emit(&ex::table1::run());
    ex::emit(&ex::table2::run());
    println!("{}", ex::table4::render_full(scale));
    let t4 = ex::table4::run(scale);
    t4.write_to(&results).ok();
    let stat = ex::table4_static::run(scale);
    let ts = ex::table4_static::static_table(&stat);
    println!("{ts}");
    match ts.write_to(&results, "table4_static") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(err) => eprintln!("could not write results JSON: {err}"),
    }
    let dyn_rows = ex::table4_static::dynamic_rows(scale);
    let td = ex::table4_static::dynamic_table(&dyn_rows);
    println!("{td}");
    match td.write_to(&results, "table4_dynamic") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(err) => eprintln!("could not write results JSON: {err}"),
    }
    for e in [
        ex::fig1::run(scale),
        ex::fig3::run(scale),
        ex::fig4::run(scale),
        ex::fig5::run(scale),
        ex::fig6::run(scale),
        ex::ext_lanes::run(scale),
        ex::ext_chaining::run(scale),
        ex::ext_cluster::run(scale),
        ex::irregular_stalls::run(scale),
    ] {
        ex::emit_result(e);
    }

    let missing = vlt_bench::missing_result_files(&results);
    if !missing.is_empty() {
        eprintln!(
            "suite incomplete: {} is missing expected result files: {}",
            results.display(),
            missing.join(", ")
        );
        std::process::exit(1);
    }
}
