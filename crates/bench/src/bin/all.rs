//! Run every experiment and write all JSON records.

fn main() {
    use vlt_bench::experiments as ex;
    let scale = ex::scale_from_env();
    println!("{}", ex::table3::run());
    ex::emit(&ex::table1::run());
    ex::emit(&ex::table2::run());
    println!("{}", ex::table4::render_full(scale));
    let t4 = ex::table4::run(scale);
    t4.write_to(&vlt_bench::results_dir()).ok();
    for e in [
        ex::fig1::run(scale),
        ex::fig3::run(scale),
        ex::fig4::run(scale),
        ex::fig5::run(scale),
        ex::fig6::run(scale),
        ex::ext_lanes::run(scale),
        ex::ext_chaining::run(scale),
    ] {
        ex::emit_result(e);
    }
}
