//! Extension/ablation study. See `vlt_bench::experiments::ext_lanes`.

fn main() {
    let scale = vlt_bench::experiments::scale_from_env();
    let e = vlt_bench::experiments::ext_lanes::run(scale);
    vlt_bench::experiments::emit(&e);
}
