//! Regenerate fig3 of the paper. See `vlt_bench::experiments::fig3`.

fn main() {
    let scale = vlt_bench::experiments::scale_from_env();
    vlt_bench::experiments::emit_result(vlt_bench::experiments::fig3::run(scale));
}
