//! Regenerate table1 of the paper (analytical area model).

fn main() {
    let e = vlt_bench::experiments::table1::run();
    vlt_bench::experiments::emit(&e);
}
