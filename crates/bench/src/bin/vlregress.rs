//! `vlregress`: the performance-regression harness.
//!
//! Records the full workload suite (Table 4 + the irregular kernels,
//! across thread counts and the clustered ultra-wide point) into a
//! versioned baseline JSON, then gates future changes by re-running the
//! same points and comparing every recorded metric against its tolerance
//! band:
//!
//! * **cycles / committed / utilization / stall causes** — exact. The
//!   simulator is deterministic, so any drift is a real timing-model
//!   change and fails the check (re-record deliberately when a change is
//!   intended, and say why in the commit).
//! * **throughput.mcps** — wall-clock simulation speed, report-only: it
//!   varies with the host, so it never gates, but large slowdowns are
//!   printed for a human to notice.
//!
//! ```text
//! vlregress --record                 # write results/vlregress_baseline.json
//! vlregress --check                  # compare a fresh run against it
//! vlregress --check --baseline B     # compare against a specific file
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use vlt_bench::harness::{results_dir, MAX_CYCLES};
use vlt_core::{SimResult, System, SystemConfig};
use vlt_stats::json::Json;
use vlt_stats::Table;
use vlt_workloads::{irregular_suite, suite, Scale, Workload};

const SCHEMA: &str = "vlt-regress";
const VERSION: f64 = 1.0;

const USAGE: &str = "\
usage: vlregress --record [--baseline PATH]
       vlregress --check  [--baseline PATH]

  --record        run the full suite and write the baseline JSON
  --check         run the full suite and compare against the baseline;
                  exits nonzero when any gating metric leaves its band
  --baseline P    baseline file (default: results/vlregress_baseline.json)
  -h, --help      this text";

/// One suite point: a workload shape the baseline pins.
struct Point {
    key: String,
    workload: &'static dyn Workload,
    cfg: SystemConfig,
    threads: usize,
    clusters: usize,
}

/// The fixed point set: every workload (Table 4 + irregular) at 1/2/4
/// threads on `v4-cmt`, plus the 8-thread spread over two 8-lane clusters
/// for every vectorizable kernel (the ultra-wide VLT shape).
fn points() -> Vec<Point> {
    let mut out = Vec::new();
    for w in suite().into_iter().chain(irregular_suite()) {
        for threads in [1usize, 2, 4] {
            if threads > w.max_threads() {
                continue;
            }
            out.push(Point {
                key: format!("{}.x{threads}.v4-cmt", w.name()),
                workload: w,
                cfg: SystemConfig::v4_cmt(),
                threads,
                clusters: 1,
            });
        }
        if w.vectorizable() {
            out.push(Point {
                key: format!("{}.x8.v8-2x8", w.name()),
                workload: w,
                cfg: SystemConfig::v8_clustered(2),
                threads: 8,
                clusters: 2,
            });
        }
    }
    out
}

/// The gating tolerance for a metric, as a relative band; `None` marks a
/// report-only metric that never gates.
fn tolerance(metric: &str) -> Option<f64> {
    if metric.starts_with("throughput.") {
        None
    } else {
        // Deterministic simulator: every timing metric is exact.
        Some(0.0)
    }
}

/// Run one point and flatten its result into the recorded metric set.
fn measure(p: &Point) -> Result<BTreeMap<String, f64>, String> {
    let built = p.workload.build_spread(p.threads, p.clusters, Scale::Test);
    let start = Instant::now();
    let mut sys = System::new(p.cfg.clone(), &built.program, p.threads);
    let result: SimResult =
        sys.run(MAX_CYCLES).map_err(|e| format!("{}: simulation failed: {e}", p.key))?;
    let wall = start.elapsed();
    (built.verifier)(sys.funcsim()).map_err(|m| format!("{}: verification failed: {m}", p.key))?;
    result
        .check_stall_conservation()
        .map_err(|e| format!("{}: stall accounting broken: {e}", p.key))?;

    let mut m = BTreeMap::new();
    m.insert("cycles".into(), result.cycles as f64);
    m.insert("committed".into(), result.committed as f64);
    m.insert("util.busy".into(), result.utilization.busy as f64);
    m.insert("util.partly-idle".into(), result.utilization.partly_idle as f64);
    m.insert("util.stalled".into(), result.utilization.stalled as f64);
    m.insert("util.all-idle".into(), result.utilization.all_idle as f64);
    for (cause, n) in result.stalls().iter() {
        if n > 0 {
            m.insert(format!("stalls.{}", cause.name()), n as f64);
        }
    }
    let mcps = result.cycles as f64 / wall.as_secs_f64().max(1e-9) / 1e6;
    m.insert("throughput.mcps".into(), mcps);
    Ok(m)
}

fn run_all() -> Result<BTreeMap<String, BTreeMap<String, f64>>, String> {
    let pts = points();
    let mut all = BTreeMap::new();
    for (i, p) in pts.iter().enumerate() {
        eprintln!("vlregress: [{}/{}] {} ...", i + 1, pts.len(), p.key);
        all.insert(p.key.clone(), measure(p)?);
    }
    Ok(all)
}

fn to_json(all: &BTreeMap<String, BTreeMap<String, f64>>) -> Json {
    let points = all
        .iter()
        .map(|(k, metrics)| {
            (
                k.clone(),
                Json::Obj(metrics.iter().map(|(n, v)| (n.clone(), Json::Num(*v))).collect()),
            )
        })
        .collect();
    let mut doc = BTreeMap::new();
    doc.insert("schema".into(), Json::Str(SCHEMA.into()));
    doc.insert("version".into(), Json::Num(VERSION));
    doc.insert("points".into(), Json::Obj(points));
    Json::Obj(doc)
}

fn parse_baseline(path: &PathBuf) -> Result<BTreeMap<String, BTreeMap<String, f64>>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e} (record one first)", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: malformed JSON: {e}", path.display()))?;
    if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
        return Err(format!("{}: not a {SCHEMA} document", path.display()));
    }
    if doc.get("version").and_then(Json::as_f64) != Some(VERSION) {
        return Err(format!("{}: baseline schema version mismatch", path.display()));
    }
    let Some(Json::Obj(points)) = doc.get("points") else {
        return Err(format!("{}: \"points\" is not an object", path.display()));
    };
    let mut out = BTreeMap::new();
    for (key, metrics) in points {
        let Json::Obj(metrics) = metrics else {
            return Err(format!("{}: point {key:?} is not an object", path.display()));
        };
        let metrics: BTreeMap<String, f64> =
            metrics.iter().filter_map(|(n, v)| v.as_f64().map(|v| (n.clone(), v))).collect();
        out.insert(key.clone(), metrics);
    }
    Ok(out)
}

fn record(path: &PathBuf) -> Result<(), String> {
    let all = run_all()?;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    std::fs::write(path, to_json(&all).pretty())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    eprintln!("vlregress: recorded {} points into {}", all.len(), path.display());
    Ok(())
}

fn check(path: &PathBuf) -> Result<(), String> {
    let base = parse_baseline(path)?;
    let cur = run_all()?;
    let mut failures =
        Table::new("Regressions (outside tolerance)", &["point", "metric", "baseline", "current"]);
    let mut drifted = 0usize;
    for (key, base_metrics) in &base {
        let Some(cur_metrics) = cur.get(key) else {
            failures.row(&[key.clone(), "<point>".into(), "present".into(), "missing".into()]);
            continue;
        };
        for (metric, b) in base_metrics {
            let c = cur_metrics.get(metric).copied().unwrap_or(0.0);
            match tolerance(metric) {
                None => {
                    // Report-only: flag >2x wall-clock slowdowns for a
                    // human, never gate on them.
                    if *b > 0.0 && c < *b / 2.0 {
                        eprintln!(
                            "vlregress: note: {key} {metric} fell {:.1} -> {:.1} \
                             (report-only; host-dependent)",
                            b, c
                        );
                        drifted += 1;
                    }
                }
                Some(tol) => {
                    if (c - b).abs() > tol * b.abs().max(c.abs()) {
                        failures.row(&[
                            key.clone(),
                            metric.clone(),
                            format!("{b}"),
                            format!("{c}"),
                        ]);
                    }
                }
            }
        }
        for metric in cur_metrics.keys() {
            if !base_metrics.contains_key(metric) && tolerance(metric).is_some() {
                let c = cur_metrics[metric];
                failures.row(&[key.clone(), metric.clone(), "absent".into(), format!("{c}")]);
            }
        }
    }
    for key in cur.keys() {
        if !base.contains_key(key) {
            failures.row(&[key.clone(), "<point>".into(), "missing".into(), "present".into()]);
        }
    }
    if !failures.is_empty() {
        println!("{failures}");
        return Err(format!(
            "performance baseline violated — if the change is intended, \
             re-record with `vlregress --record` and commit {}",
            path.display()
        ));
    }
    println!(
        "vlregress: {} points match the baseline exactly ({} report-only drifts)",
        cur.len(),
        drifted
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let mut mode = None;
    let mut baseline = results_dir().join("vlregress_baseline.json");
    let bad = |msg: String| {
        eprintln!("{msg}\n\n{USAGE}");
        ExitCode::FAILURE
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--record" | "--check" => {
                if mode.replace(a.clone()).is_some() {
                    return bad("pick one of --record / --check".into());
                }
            }
            "--baseline" => match argv.next() {
                Some(p) => baseline = PathBuf::from(p),
                None => return bad("--baseline needs a path".into()),
            },
            s => return bad(format!("unknown option {s}")),
        }
    }
    let r = match mode.as_deref() {
        Some("--record") => record(&baseline),
        Some("--check") => check(&baseline),
        _ => {
            println!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vlregress: {e}");
            ExitCode::FAILURE
        }
    }
}
