//! Echo the base configuration against the paper's Table 3.

fn main() {
    println!("{}", vlt_bench::experiments::table3::run());
}
