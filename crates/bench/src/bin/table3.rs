//! Echo the base configuration against the paper's Table 3 and persist
//! the JSON record.

fn main() {
    let t = vlt_bench::experiments::table3::run();
    println!("{t}");
    match t.write_to(&vlt_bench::results_dir(), "table3") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(err) => {
            eprintln!("could not write results JSON: {err}");
            std::process::exit(1);
        }
    }
}
