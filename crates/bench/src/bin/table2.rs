//! Regenerate table2 of the paper (analytical area model).

fn main() {
    let e = vlt_bench::experiments::table2::run();
    vlt_bench::experiments::emit(&e);
}
