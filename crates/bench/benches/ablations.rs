//! Ablations over the design choices DESIGN.md §4 calls out: misprediction
//! penalty, VCL issue width, L2 bank count, and the VLT-thread-count ×
//! vector-length crossover.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use vlt_core::{System, SystemConfig};
use vlt_workloads::{workload, Built, Scale};

fn cycles(cfg: SystemConfig, built: &Built, threads: usize) -> u64 {
    let mut sys = System::new(cfg, &built.program, threads);
    sys.run(200_000_000).expect("simulates").cycles
}

/// Timing sensitivity to the front-end redirect penalty (the main knob of
/// the no-wrong-path simplification, DESIGN.md §7).
fn ablation_mispredict(c: &mut Criterion) {
    let built = workload("radix").unwrap().build(1, Scale::Test);
    let mut g = c.benchmark_group("ablation_mispredict");
    g.sample_size(10);
    for penalty in [5u64, 10, 20] {
        g.bench_function(format!("penalty_{penalty}"), |b| {
            b.iter_batched(
                || {
                    let mut cfg = SystemConfig::base(8);
                    cfg.cores[0].mispredict_penalty = penalty;
                    cfg
                },
                |cfg| cycles(cfg, &built, 1),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// The multiplexed-VCL claim (§3.2): halving or doubling the shared issue
/// width brackets the paper's 2-way design point.
fn ablation_vcl_issue(c: &mut Criterion) {
    let built = workload("trfd").unwrap().build(4, Scale::Test);
    let mut g = c.benchmark_group("ablation_vcl");
    g.sample_size(10);
    for width in [1usize, 2, 4] {
        g.bench_function(format!("issue_{width}"), |b| {
            b.iter_batched(
                || {
                    let mut cfg = SystemConfig::v4_cmp();
                    cfg.vcl.issue_width = width;
                    cfg
                },
                |cfg| cycles(cfg, &built, 4),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// L2 banking: fewer banks serialize the element streams of vector loads.
fn ablation_banks(c: &mut Criterion) {
    let built = workload("sage").unwrap().build(1, Scale::Test);
    let mut g = c.benchmark_group("ablation_banks");
    g.sample_size(10);
    for banks in [4usize, 16] {
        g.bench_function(format!("banks_{banks}"), |b| {
            b.iter_batched(
                || {
                    let mut cfg = SystemConfig::base(8);
                    cfg.mem.l2_banks = banks;
                    cfg
                },
                |cfg| cycles(cfg, &built, 1),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// VLT thread count on a fixed short-VL workload: where the crossover
/// between lane partitioning and thread-level parallelism falls.
fn ablation_vlt_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_vlt_threads");
    g.sample_size(10);
    for (threads, cfg) in
        [(1usize, SystemConfig::base(8)), (2, SystemConfig::v2_cmp()), (4, SystemConfig::v4_cmp())]
    {
        let built = workload("mpenc").unwrap().build(threads, Scale::Test);
        g.bench_function(format!("mpenc_x{threads}"), |b| {
            b.iter_batched(
                || cfg.clone(),
                |cfg| cycles(cfg, &built, threads),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Lane-core issue width in VLT scalar-thread mode: the paper's lanes are
/// 2-way (§5); a 1-way lane halves Figure 6's throughput headroom.
fn ablation_lane_width(c: &mut Criterion) {
    use std::sync::Arc;
    use vlt_exec::{ExecError, FuncSim, Step};
    use vlt_mem::{MemConfig, MemSystem};
    use vlt_scalar::{FetchResult, FetchSource, InOrderCore, LaneCoreConfig};

    struct Src(FuncSim);
    impl FetchSource for Src {
        fn fetch(&mut self, t: usize) -> Result<FetchResult, ExecError> {
            Ok(match self.0.step_thread(t)? {
                Step::Inst(d) => FetchResult::Inst(d),
                Step::AtBarrier => FetchResult::AtBarrier,
                Step::Halted => FetchResult::Halted,
            })
        }
    }

    let built = workload("ocean").unwrap().build(8, Scale::Test);
    let mut g = c.benchmark_group("ablation_lane_width");
    g.sample_size(10);
    for width in [1usize, 2] {
        g.bench_function(format!("ocean_{width}way_lanes"), |b| {
            b.iter_batched(
                || {
                    let sim = FuncSim::new(&built.program, 8);
                    let decoded = Arc::clone(&sim.prog);
                    let cores: Vec<InOrderCore> = (0..8)
                        .map(|t| {
                            let cfg = LaneCoreConfig { width, ..LaneCoreConfig::default() };
                            InOrderCore::new(cfg, t, 0, t, Arc::clone(&decoded))
                        })
                        .collect();
                    (Src(sim), cores, MemSystem::new(MemConfig::default(), 2, 8))
                },
                |(mut src, mut cores, mut mem)| {
                    let mut now = 0u64;
                    while !cores.iter().all(|c| c.done()) {
                        for core in cores.iter_mut() {
                            core.tick(now, &mut mem, &mut src).unwrap();
                        }
                        now += 1;
                        assert!(now < 100_000_000);
                    }
                    now
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_mispredict,
    ablation_vcl_issue,
    ablation_banks,
    ablation_vlt_threads,
    ablation_lane_width
);
criterion_main!(benches);
