//! Criterion micro-benchmarks of the simulator's own hot paths: assembler
//! throughput, functional interpretation, cache hierarchy, and whole-system
//! simulation speed.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use vlt_core::{System, SystemConfig};
use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;
use vlt_mem::{Cache, MemConfig, MemSystem};
use vlt_workloads::{workload, Scale};

fn bench_assembler(c: &mut Criterion) {
    // A representative mixed kernel, repeated to ~2k instructions.
    let unit: String = (0..250)
        .map(|i| {
            format!(
                r#"
        li      x1, 64
        setvl   x2, x1
        vld     v1, x4
        vfma.vs v2, v1, f1
        vst     v2, x5
        addi    x4, x4, 8
        blt     x4, x6, next{i}
    next{i}:
        nop
"#
            )
        })
        .collect();
    let src = format!(".text\n{unit}halt\n");
    let mut g = c.benchmark_group("assembler");
    g.throughput(Throughput::Elements(2001));
    g.bench_function("assemble_2k_insts", |b| b.iter(|| assemble(black_box(&src)).unwrap()));
    g.finish();
}

fn bench_funcsim(c: &mut Criterion) {
    let built = workload("mxm").unwrap().build(1, Scale::Test);
    let mut g = c.benchmark_group("funcsim");
    g.bench_function("mxm_test_scale", |b| {
        b.iter_batched(
            || FuncSim::new(&built.program, 1),
            |mut sim| sim.run_to_completion(100_000_000).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_caches(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("l1_tags_4k_accesses", |b| {
        b.iter_batched(
            || Cache::new(16 * 1024, 2, 64),
            |mut cache| {
                for i in 0..4096u64 {
                    black_box(cache.access((i * 40) & 0xFFFF));
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("banked_l2_4k_accesses", |b| {
        b.iter_batched(
            || MemSystem::new(MemConfig::default(), 1, 8),
            |mut mem| {
                for i in 0..4096u64 {
                    black_box(mem.l2_access(i * 8, i % 3 == 0, i));
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_full_system(c: &mut Criterion) {
    let built = workload("trfd").unwrap().build(1, Scale::Test);
    let mut g = c.benchmark_group("system");
    g.sample_size(20);
    g.bench_function("trfd_base8_test_scale", |b| {
        b.iter_batched(
            || System::new(SystemConfig::base(8), &built.program, 1),
            |mut sys| sys.run(100_000_000).unwrap(),
            BatchSize::SmallInput,
        )
    });
    let built4 = workload("trfd").unwrap().build(4, Scale::Test);
    g.bench_function("trfd_v4cmp_test_scale", |b| {
        b.iter_batched(
            || System::new(SystemConfig::v4_cmp(), &built4.program, 4),
            |mut sys| sys.run(100_000_000).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_assembler, bench_funcsim, bench_caches, bench_full_system);
criterion_main!(benches);
