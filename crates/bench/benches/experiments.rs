//! Per-figure simulation sweeps as Criterion benchmarks (Test scale):
//! `cargo bench` regenerates the timing-relevant portion of every figure
//! quickly and tracks simulator performance regressions on each.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use vlt_core::{System, SystemConfig};
use vlt_workloads::{workload, Built, Scale};

fn run(cfg: SystemConfig, built: &Built, threads: usize) -> u64 {
    let mut sys = System::new(cfg, &built.program, threads);
    sys.run(200_000_000).expect("simulates").cycles
}

/// Figure 1's core contrast: mxm (long VL) on 1 vs 8 lanes.
fn fig1_lane_scaling(c: &mut Criterion) {
    let built = workload("mxm").unwrap().build(1, Scale::Test);
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    for lanes in [1usize, 8] {
        g.bench_function(format!("mxm_{lanes}_lanes"), |b| {
            b.iter_batched(
                || (),
                |_| run(SystemConfig::base(lanes), &built, 1),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// Figure 3's core contrast: trfd base vs V4-CMP.
fn fig3_vlt_speedup(c: &mut Criterion) {
    let base = workload("trfd").unwrap().build(1, Scale::Test);
    let vlt = workload("trfd").unwrap().build(4, Scale::Test);
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("trfd_base", |b| {
        b.iter_batched(|| (), |_| run(SystemConfig::base(8), &base, 1), BatchSize::SmallInput)
    });
    g.bench_function("trfd_v4cmp", |b| {
        b.iter_batched(|| (), |_| run(SystemConfig::v4_cmp(), &vlt, 4), BatchSize::SmallInput)
    });
    g.finish();
}

/// Figure 6's core contrast: ocean on the CMT vs on the lanes.
fn fig6_scalar_threads(c: &mut Criterion) {
    let cmt = workload("ocean").unwrap().build(4, Scale::Test);
    let lanes = workload("ocean").unwrap().build(8, Scale::Test);
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("ocean_cmt", |b| {
        b.iter_batched(|| (), |_| run(SystemConfig::cmt(), &cmt, 4), BatchSize::SmallInput)
    });
    g.bench_function("ocean_lanes", |b| {
        b.iter_batched(
            || (),
            |_| run(SystemConfig::v4_cmt_lane_threads(), &lanes, 8),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, fig1_lane_scaling, fig3_vlt_speedup, fig6_scalar_threads);
criterion_main!(benches);
