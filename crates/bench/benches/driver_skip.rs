//! Event-driven driver vs the cycle-by-cycle oracle.
//!
//! The event-driven driver skips quiescent spans — cycles where no unit can
//! change state — in one jump instead of ticking through them. The win is
//! proportional to how much of the run is dead time:
//!
//! * `mem_bound`: a dependent pointer chase with the caches shrunk until
//!   every hop misses to memory. Almost the whole run is the core parked on
//!   a load; the event-driven driver should be **several times** faster.
//! * `barrier_heavy`: two threads with lopsided work meeting at barriers.
//!   The light thread parks for most of each phase; skipping reclaims its
//!   idle spans.
//! * `compute_bound` (control): cache-resident daxpy that issues vector
//!   work nearly every cycle. There is nothing to skip, so this guards
//!   against the event scan itself regressing the dense case.
//!
//! Both drivers produce byte-identical `SimResult`s (asserted here and
//! property-tested in `vlt-core`), so any delta is pure driver overhead.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use vlt_core::{DriverMode, System, SystemConfig};
use vlt_isa::asm::assemble;
use vlt_isa::Program;

const MAX: u64 = 2_000_000_000;

/// A serial pointer chase: `hops` dependent loads through a ring of `cells`
/// pointers laid out with a large stride so consecutive hops never share a
/// cache line. With the tiny cache config below, every hop is a full memory
/// round trip with a dead core in between.
fn chase_kernel(cells: usize, hops: usize) -> Program {
    // ring[i] -> ring[(i + stride) % cells]; each cell is padded to its own
    // 64-byte cache line so consecutive hops never share one.
    let stride = 7usize; // coprime with cells => full cycle
    let slots: Vec<String> = (0..cells)
        .map(|i| format!(".dword ring + {}\n        .zero 56", ((i + stride) % cells) * 64))
        .collect();
    let src = format!(
        r#"
        .data
    ring:
        {slots}
        .text
        la      x1, ring
        li      x2, {hops}
        li      x3, 0
    loop:
        ld      x1, 0(x1)
        addi    x3, x3, 1
        blt     x3, x2, loop
        halt
    "#,
        slots = slots.join("\n    "),
        hops = hops,
    );
    assemble(&src).unwrap()
}

/// Two threads, `phases` barrier-separated phases of serially dependent
/// `fdiv`s (16-cycle unpipelined divides — the longest scalar latency).
/// Thread 0 does `heavy` divides per phase, thread 1 does 1/16th of that
/// and parks at the barrier. The light thread's park plus the heavy
/// thread's inter-divide bubbles leave most cycles globally quiescent.
fn barrier_kernel(phases: usize, heavy: usize) -> Program {
    let src = format!(
        r#"
        .data
    out:
        .zero 16
        .text
        tid     x10
        li      x11, {heavy}
        li      x12, {light}
        li      x13, {phases}
        li      x14, 0
        li      x4, 3
        fcvt.f.x f1, x4
        fcvt.f.x f2, x11
        mv      x5, x11
        beqz    x10, phase
        mv      x5, x12
    phase:
        li      x6, 0
    work:
        fdiv    f2, f2, f1
        addi    x6, x6, 1
        blt     x6, x5, work
        barrier
        addi    x14, x14, 1
        blt     x14, x13, phase
        la      x15, out
        slli    x16, x10, 3
        add     x15, x15, x16
        sd      x6, 0(x15)
        halt
    "#,
        phases = phases,
        heavy = heavy,
        light = (heavy / 16).max(1),
    );
    assemble(&src).unwrap()
}

/// Cache-resident daxpy: the VU has work essentially every cycle.
fn daxpy_kernel(n: usize) -> Program {
    let src = format!(
        r#"
        .data
    xs:
        .zero {bytes}
    ys:
        .zero {bytes}
        .text
        li      x18, 2
        fcvt.f.x f1, x18
        la      x15, xs
        la      x16, ys
        li      x12, {n}
        li      x17, 0
    loop:
        sub     x3, x12, x17
        setvl   x2, x3
        vld     v1, x15
        vld     v2, x16
        vfma.vs v2, v1, f1
        vst     v2, x16
        slli    x7, x2, 3
        add     x15, x15, x7
        add     x16, x16, x7
        add     x17, x17, x2
        blt     x17, x12, loop
        halt
    "#,
        bytes = 8 * n,
        n = n
    );
    assemble(&src).unwrap()
}

/// base(8) with the caches shrunk so the pointer chase misses everywhere.
fn tiny_cache_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::base(8);
    cfg.mem.l1_size = 256;
    cfg.mem.l2_size = 1024;
    cfg
}

fn run(cfg: &SystemConfig, prog: &Program, threads: usize, mode: DriverMode) -> u64 {
    System::new(cfg.clone(), prog, threads).with_driver(mode).run(MAX).unwrap().cycles
}

fn bench_pair(c: &mut Criterion, group: &str, cfg: &SystemConfig, prog: &Program, threads: usize) {
    // Sanity: the two drivers must agree before we time them.
    let naive = System::new(cfg.clone(), prog, threads)
        .with_driver(DriverMode::CycleByCycle)
        .run(MAX)
        .unwrap();
    let event = System::new(cfg.clone(), prog, threads).run(MAX).unwrap();
    assert_eq!(naive, event, "drivers diverged on {group}");

    let mut g = c.benchmark_group(group);
    g.throughput(Throughput::Elements(naive.cycles));
    for (name, mode) in
        [("event_driven", DriverMode::EventDriven), ("cycle_by_cycle", DriverMode::CycleByCycle)]
    {
        g.bench_function(name, |b| {
            b.iter_batched(
                || (),
                |()| black_box(run(cfg, prog, threads, mode)),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_driver_skip(c: &mut Criterion) {
    let cfg = tiny_cache_cfg();
    let prog = chase_kernel(64, 4096);
    bench_pair(c, "driver_skip_mem_bound", &cfg, &prog, 1);

    let cfg = SystemConfig::v2_cmp();
    let prog = barrier_kernel(64, 2048);
    bench_pair(c, "driver_skip_barrier_heavy", &cfg, &prog, 2);

    let cfg = SystemConfig::base(8);
    let prog = daxpy_kernel(8 * 1024);
    bench_pair(c, "driver_skip_compute_bound", &cfg, &prog, 1);
}

criterion_group!(benches, bench_driver_skip);
criterion_main!(benches);
