//! Functional replay: the block engine vs the single-step interpreter.
//!
//! The paper's methodology runs every workload through the functional
//! simulator first (functional-first, timing-replay), so `FuncSim`
//! throughput bounds how fast any experiment can go. The block engine
//! pre-compiles hot basic blocks into threaded-code µop sequences with
//! direct successor links; this bench measures the resulting replay
//! speedup over the nine paper kernels at the suite's 4-thread shape.
//!
//! Both engines produce identical `RunSummary`s and final memory images
//! (asserted here before timing; exhaustively tested in
//! `vlt-workloads/tests/engine_suite.rs`), so any delta is pure engine
//! overhead. Results are recorded in `results/func_replay.md`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use vlt_exec::{EngineMode, FuncSim};
use vlt_workloads::{suite, Scale};

const BUDGET: u64 = 2_000_000_000;

/// The nine kernels all run vectorized where possible at 4 threads —
/// the `V4-*` design points' shape, and the suite's most common run.
const THREADS: usize = 4;

fn bench_func_replay(c: &mut Criterion) {
    for w in suite() {
        let built = w.build(THREADS, Scale::Small);

        // Sanity: the engines must agree before we time them.
        let mut oracle = FuncSim::new(&built.program, THREADS).with_engine(EngineMode::Interp);
        let expect = oracle.run_to_completion(BUDGET).unwrap();
        let mut blocks = FuncSim::new(&built.program, THREADS).with_engine(EngineMode::Block);
        let got = blocks.run_to_completion(BUDGET).unwrap();
        assert_eq!(expect, got, "engines diverged on {}", w.name());
        assert_eq!(oracle.mem, blocks.mem, "final memory diverged on {}", w.name());
        (built.verifier)(&blocks).unwrap_or_else(|m| panic!("{} verify: {m}", w.name()));

        let mut g = c.benchmark_group(format!("func_replay_{}", w.name()));
        g.throughput(Throughput::Elements(expect.insts));
        for (name, engine) in [("block", EngineMode::Block), ("interp", EngineMode::Interp)] {
            g.bench_function(name, |b| {
                b.iter_batched(
                    || FuncSim::new(&built.program, THREADS).with_engine(engine),
                    |mut sim| black_box(sim.run_to_completion(BUDGET).unwrap().insts),
                    BatchSize::SmallInput,
                )
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_func_replay);
criterion_main!(benches);
