//! Isolates the functional→timing hand-off: how fast can a timing model
//! pull [`vlt_exec::DynInst`]s out of the functional simulator and resolve
//! vector memory addresses through the arena? This is the path the
//! `AddrRange` refactor made allocation-free (`DynInst` is `Copy`; element
//! addresses live in `FuncSim`'s arena instead of a per-instruction `Vec`),
//! so regressions here mean the hot hand-off loop grew an allocation back.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use vlt_exec::{DynKind, FuncSim, Step};
use vlt_isa::asm::assemble;
use vlt_isa::Program;

/// A vector-heavy kernel: daxpy over `n` elements in VL-64 chunks. Roughly
/// a third of the dynamic stream is vector memory traffic, matching the
/// workloads where the old per-`DynInst` `Vec<u64>` allocation dominated.
fn kernel(n: usize) -> Program {
    let src = format!(
        r#"
        .data
    xs:
        .zero {bytes}
    ys:
        .zero {bytes}
        .text
        li      x1, 64
        setvl   x2, x1
        li      x18, 2
        fcvt.f.x f1, x18
        la      x15, xs
        la      x16, ys
        li      x12, {n}
        li      x17, 0
    loop:
        sub     x3, x12, x17
        setvl   x2, x3
        vld     v1, x15
        vld     v2, x16
        vfma.vs v2, v1, f1
        vst     v2, x16
        slli    x7, x2, 3
        add     x15, x15, x7
        add     x16, x16, x7
        add     x17, x17, x2
        blt     x17, x12, loop
        halt
    "#,
        bytes = 8 * n,
        n = n
    );
    assemble(&src).unwrap()
}

/// Drain the whole single-thread instruction stream the way a timing front
/// end does: one `step_thread` per fetch, touching every `DynInst` and
/// resolving every vector memory instruction's addresses via the arena.
/// Returns (instructions, resolved element addresses, address checksum).
fn drain(sim: &mut FuncSim) -> (u64, u64, u64) {
    let mut insts = 0u64;
    let mut elems = 0u64;
    let mut sum = 0u64;
    loop {
        match sim.step_thread(0).unwrap() {
            Step::Inst(d) => {
                insts += 1;
                if let DynKind::VMem { addrs } = d.kind {
                    for &a in sim.addrs(addrs) {
                        sum = sum.wrapping_add(a);
                        elems += 1;
                    }
                }
                black_box(d);
            }
            Step::AtBarrier => {}
            Step::Halted => return (insts, elems, sum),
        }
    }
}

fn bench_trace_pipeline(c: &mut Criterion) {
    let n = 16 * 1024;
    let prog = kernel(n);

    // One dry run to size the throughput denominator.
    let (insts, elems, _) = drain(&mut FuncSim::new(&prog, 1));

    let mut g = c.benchmark_group("trace_pipeline");
    g.throughput(Throughput::Elements(insts));
    g.bench_function("funcsim_to_timing_handoff", |b| {
        b.iter_batched(
            || FuncSim::new(&prog, 1),
            |mut sim| black_box(drain(&mut sim)),
            BatchSize::LargeInput,
        )
    });
    g.finish();

    // Same stream, counted in resolved element addresses: the unit the old
    // implementation heap-allocated per vector memory instruction.
    let mut g = c.benchmark_group("trace_pipeline_addrs");
    g.throughput(Throughput::Elements(elems));
    g.bench_function("vmem_address_resolution", |b| {
        b.iter_batched(
            || FuncSim::new(&prog, 1),
            |mut sim| black_box(drain(&mut sim)),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_trace_pipeline);
criterion_main!(benches);
