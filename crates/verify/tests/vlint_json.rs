//! End-to-end check of `vlint --json`: the CLI's machine-readable output
//! must parse back through the library's own schema parsers
//! (`vlt_verify::json`) — the CLI and the library can never drift apart
//! on the schema.

use std::process::Command;

use vlt_verify::json::{vlint_output_from_json, FileOutcome};
use vlt_verify::Severity;

fn run_vlint(args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_vlint")).args(args).output().expect("vlint runs");
    (out.status.code(), String::from_utf8(out.stdout).unwrap())
}

#[test]
fn json_output_round_trips_through_the_library_parser() {
    let dir = std::env::temp_dir().join("vlint-json-test");
    std::fs::create_dir_all(&dir).unwrap();
    // One clean file, one with findings (undef read + dead write).
    let clean = dir.join("clean.s");
    std::fs::write(
        &clean,
        ".data\nbuf:\n.zero 64\n.text\nla x1, buf\nli x2, 7\nsd x2, 0(x1)\nld x3, 8(x1)\n\
         add x4, x2, x3\nsd x4, 16(x1)\nhalt\n",
    )
    .unwrap();
    let dirty = dir.join("dirty.s");
    std::fs::write(&dirty, "add x2, x7, x7\nhalt\n").unwrap();

    let (code, stdout) = run_vlint(&["--json", clean.to_str().unwrap(), dirty.to_str().unwrap()]);
    assert_eq!(code, Some(1), "dirty file has an error finding");

    let files = vlint_output_from_json(&stdout)
        .unwrap_or_else(|e| panic!("CLI emitted unparseable JSON ({e}):\n{stdout}"));
    assert_eq!(files.len(), 2, "expected two file reports:\n{stdout}");

    let (clean_path, clean_outcome) = &files[0];
    assert_eq!(clean_path, clean.to_str().unwrap());
    let FileOutcome::Report(clean_report) = clean_outcome else {
        panic!("clean file failed to assemble:\n{stdout}");
    };
    assert!(clean_report.diags.is_empty(), "clean file reported findings:\n{stdout}");

    let (dirty_path, dirty_outcome) = &files[1];
    assert_eq!(dirty_path, dirty.to_str().unwrap());
    let FileOutcome::Report(dirty_report) = dirty_outcome else {
        panic!("dirty file failed to assemble:\n{stdout}");
    };
    assert!(dirty_report.errors() >= 1, "undef read must surface as an error:\n{stdout}");
    assert!(
        dirty_report.diags.iter().any(|d| d.severity == Severity::Error && d.sidx == Some(0)),
        "error not anchored at sidx 0:\n{stdout}"
    );
}

#[test]
fn json_assembly_errors_are_structured() {
    let dir = std::env::temp_dir().join("vlint-json-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.s");
    std::fs::write(&bad, "bogus operand soup\n").unwrap();

    let (code, stdout) = run_vlint(&["--json", bad.to_str().unwrap()]);
    assert_eq!(code, Some(1), "assembly errors fail the run");
    let files = vlint_output_from_json(&stdout)
        .unwrap_or_else(|e| panic!("CLI emitted unparseable JSON ({e}):\n{stdout}"));
    assert_eq!(files.len(), 1);
    let FileOutcome::AssemblyError(msg) = &files[0].1 else {
        panic!("expected an assembly_error entry:\n{stdout}");
    };
    assert!(msg.contains("unknown mnemonic"), "unexpected message `{msg}`");
}

/// `--json` composes with the analysis flags: race and DLP diagnostics
/// appear in the same machine-readable stream.
#[test]
fn json_carries_race_and_dlp_findings() {
    let dir = std::env::temp_dir().join("vlint-json-test");
    std::fs::create_dir_all(&dir).unwrap();
    // Two threads both store to the same address every epoch: race-ww.
    let racy = dir.join("racy.s");
    std::fs::write(
        &racy,
        ".data\nbuf:\n.zero 64\n.text\nla x1, buf\nli x2, 1\nsd x2, 0(x1)\nhalt\n",
    )
    .unwrap();

    let (code, stdout) = run_vlint(&["--json", "--races=2", racy.to_str().unwrap()]);
    assert_eq!(code, Some(0), "races are warnings, not errors");
    let files = vlint_output_from_json(&stdout).unwrap();
    let FileOutcome::Report(report) = &files[0].1 else { panic!("assembled") };
    assert!(
        report.diags.iter().any(|d| d.code.name().starts_with("race-")),
        "race finding missing from JSON:\n{stdout}"
    );
}
