//! The checked-in example kernels (`examples/asm/*.s`) must stay
//! warning-free under the verifier *and* run dynamically fault-free —
//! they are the documentation of what clean VLT assembly looks like.

use std::fs;
use std::path::PathBuf;

use vlt_exec::{CheckConfig, FuncSim};
use vlt_isa::asm::assemble;
use vlt_verify::{predicted_undef_reads, verify, Options};

fn example_sources() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/asm");
    let mut out = Vec::new();
    for entry in fs::read_dir(&dir).expect("examples/asm must exist") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "s") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.push((name, fs::read_to_string(&path).unwrap()));
        }
    }
    out.sort();
    assert!(!out.is_empty(), "no .s files under examples/asm");
    out
}

#[test]
fn examples_are_spotless() {
    for (name, src) in example_sources() {
        let prog = assemble(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = verify(&prog);
        assert!(report.diags.is_empty(), "{name}: expected zero findings, got:\n{report}");
    }
}

#[test]
fn examples_run_clean_under_dynamic_checker() {
    for (name, src) in example_sources() {
        let prog = assemble(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let predicted = predicted_undef_reads(&prog, &Options::default());
        // Examples either run the full 4-thread VLT config or are
        // single-thread demos; 4 threads covers both (extra threads
        // execute the same SPMD text).
        let mut sim = FuncSim::new(&prog, 4);
        sim.enable_checker(CheckConfig {
            undef_predictor: Some(Box::new(move |sidx| predicted.contains(&sidx))),
            ..CheckConfig::default()
        });
        sim.run_to_completion(10_000_000).unwrap_or_else(|e| panic!("{name}: {e}"));
        let ck = sim.checker().unwrap();
        assert!(ck.is_clean(), "{name}: dynamic faults: {:?}", ck.faults());
    }
}
