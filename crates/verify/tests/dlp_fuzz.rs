//! Differential fuzz for the static DLP analyzer: random vlint-clean SPMD
//! programs (the same deterministic generator the engine-differential fuzz
//! uses, `crates/exec/tests/support/progen.rs`) are analyzed statically and
//! then actually run under `FuncSim`, and the predicted Table-4 profile is
//! compared against the measured `RunSummary`.
//!
//! The contract under test: whenever the walker reports `exact`, every
//! counter — instructions, scalar ops, vector instructions, element ops,
//! and the full VL histogram (hence % vectorization and average VL) — must
//! match the run bit-for-bit. When the walk bails to a partial lower
//! bound, the bound must actually be a lower bound. Generated programs are
//! fully concrete (no data-dependent addresses outside the private slice),
//! so the single-threaded walk must never bail; multi-threaded walks go
//! through the shared-memory two-pass and are expected to stay exact for
//! these race-free programs too, which the final ratio assertion enforces.

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;
use vlt_verify::dlp::{analyze, DlpOptions};

#[path = "../../exec/tests/support/progen.rs"]
mod progen;
use progen::gen_program;

const CASES: u64 = 40;
const BUDGET: u64 = 4_000_000;

fn check_case(seed: u64, threads: usize) -> bool {
    let src = gen_program(seed, threads);
    let prog = assemble(&src).unwrap_or_else(|e| panic!("seed {seed}: bad program: {e}\n{src}"));
    let report = vlt_verify::verify(&prog);
    assert_eq!(
        report.errors(),
        0,
        "seed {seed}: generator emitted a program vlint rejects:\n{report}\n{src}"
    );

    let p = analyze(&prog, &DlpOptions { threads, ..DlpOptions::default() });
    let mut sim = FuncSim::new(&prog, threads);
    let s = sim.run_to_completion(BUDGET).unwrap();

    if p.exact {
        let ctx = format!("seed {seed} x{threads}\n{src}");
        assert_eq!(p.total.insts, s.insts, "insts: {ctx}");
        assert_eq!(p.total.scalar_ops, s.scalar_ops, "scalar ops: {ctx}");
        assert_eq!(p.total.vector_insts, s.vector_insts, "vector insts: {ctx}");
        assert_eq!(p.total.elem_ops, s.elem_ops, "elem ops: {ctx}");
        assert_eq!(p.total.vl_histogram.as_slice(), s.vl_histogram.as_slice(), "hist: {ctx}");
        assert!(
            (p.total.pct_vectorization() - s.pct_vectorization()).abs() < 1e-9,
            "% vect: {ctx}"
        );
        assert!((p.total.avg_vl() - s.avg_vl()).abs() < 1e-9, "avg VL: {ctx}");
    } else {
        // A bailed walk reports the profile up to the bail point — a lower
        // bound on every counter.
        assert!(p.total.insts <= s.insts, "seed {seed} x{threads}: bound exceeds run");
        assert!(p.total.elem_ops <= s.elem_ops, "seed {seed} x{threads}: bound exceeds run");
        for (vl, (&a, &b)) in p.total.vl_histogram.iter().zip(s.vl_histogram.iter()).enumerate() {
            assert!(a <= b, "seed {seed} x{threads}: histogram bound exceeds run at VL {vl}");
        }
    }
    p.exact
}

#[test]
fn randomized_programs_match_the_static_profile() {
    let mut total = 0u32;
    let mut exact = 0u32;
    for seed in 0..CASES {
        for threads in [1usize, 2, 4] {
            let e = check_case(seed * 31 + threads as u64, threads);
            if threads == 1 {
                assert!(e, "seed {}: single-threaded walk must be exact", seed * 31 + 1);
            }
            total += 1;
            exact += e as u32;
        }
    }
    // The generator only writes tid-private slices, so the shared-memory
    // two-pass should prove independence nearly everywhere.
    assert!(exact * 10 >= total * 9, "only {exact}/{total} walks were exact");
}
