//! Mutation corpus: ~25 seeded kernel defects, each of which the verifier
//! must flag with the expected lint code. The unmutated base kernel must
//! be completely clean, so every finding below is attributable to the
//! seeded defect.
//!
//! The base kernel is a realistic strip-mined SPMD saxpy: `vltcfg`
//! partitioning, per-thread ranges off `tid`, constant-folded `la`/`li`
//! address arithmetic, a `setvl` strip loop, and a converged barrier —
//! the same shapes the nine workloads use.

use vlt_verify::{verify_source, Code};

/// The defect-free base kernel (64 doubles of x and y, y += 2*x).
const BASE: &str = r#"
    .data
xs: .double 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
    .zero 448
ys: .double 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0
    .zero 448
    .text
    li      x9, 4
    vltcfg  x9
    tid     x10
    li      x11, 16            # elems per thread
    mul     x12, x10, x11      # lo
    add     x13, x12, x11      # hi
    la      x20, xs
    la      x21, ys
    li      x4, 2
    fcvt.f.x f1, x4            # a = 2.0
    mv      x14, x12           # i
loop:
    sub     x3, x13, x14
    setvl   x2, x3
    slli    x4, x14, 3
    add     x5, x20, x4
    vld     v1, x5             # x[i..]
    add     x6, x21, x4
    vld     v2, x6             # y[i..]
    vfma.vs v2, v1, f1         # y += a*x
    vst     v2, x6
    add     x14, x14, x2
    blt     x14, x13, loop
    barrier
    halt
"#;

#[test]
fn base_kernel_is_clean() {
    let r = verify_source(BASE).unwrap();
    assert_eq!(r.diags.len(), 0, "base kernel must be spotless:\n{r}");
}

/// Apply a single textual mutation to the base kernel.
fn mutate(from: &str, to: &str) -> String {
    assert!(BASE.contains(from), "mutation site `{from}` not in base");
    BASE.replacen(from, to, 1)
}

/// Verify a mutant and assert the expected code fires.
fn expect_flag(src: &str, code: Code, what: &str) {
    let r = verify_source(src).unwrap_or_else(|e| panic!("{what}: assembly failed: {e}"));
    assert!(r.flags(code), "{what}: expected {code} to fire, got:\n{r}");
}

// --- vl / vltcfg state defects -----------------------------------------

#[test]
fn dropped_setvl() {
    // The strip loop runs at the reset MVL and the loop induction reads an
    // undefined trip register.
    let src = mutate("    setvl   x2, x3\n", "");
    expect_flag(&src, Code::VlReset, "dropped setvl");
    expect_flag(&src, Code::UndefRead, "dropped setvl (x2 never written)");
}

#[test]
fn dropped_li_before_setvl() {
    let src = mutate("    li      x11, 16            # elems per thread\n", "");
    expect_flag(&src, Code::UndefRead, "dropped li feeding the range");
}

#[test]
fn setvl_request_statically_zero() {
    expect_flag("li x1, 0\nsetvl x2, x1\nhalt\n", Code::ZeroVl, "setvl of constant zero");
}

#[test]
fn vltcfg_bad_thread_count() {
    let src = mutate("li      x9, 4", "li      x9, 3");
    expect_flag(&src, Code::BadVltCfg, "vltcfg 3");
}

#[test]
fn vltcfg_uninitialized_register() {
    let src = mutate("    li      x9, 4\n", "");
    expect_flag(&src, Code::UndefRead, "vltcfg of uninitialized register");
}

#[test]
fn vltcfg_after_setvl_ordering_slip() {
    expect_flag(
        "li x1, 64\nsetvl x2, x1\nli x9, 4\nvltcfg x9\nsd x2, -8(sp)\nhalt\n",
        Code::VltcfgClampsVl,
        "vltcfg after setvl",
    );
}

#[test]
fn setvl_discards_clamped_result() {
    expect_flag(
        "li x9, 4\nvltcfg x9\nli x1, 64\nsetvl x0, x1\nhalt\n",
        Code::SetvlDiscardsClamp,
        "setvl x0 with request > MVL",
    );
}

// --- def-before-use defects --------------------------------------------

#[test]
fn swapped_operands_read_result_register() {
    // `add x5, x20, x4` mistyped so the base comes from a never-written reg.
    let src = mutate("add     x5, x20, x4", "add     x5, x25, x4");
    expect_flag(&src, Code::UndefRead, "swapped base register");
}

#[test]
fn dropped_fp_init() {
    let src = mutate("    li      x4, 2\n    fcvt.f.x f1, x4            # a = 2.0\n", "");
    expect_flag(&src, Code::UndefRead, "f1 read but never written");
}

#[test]
fn vector_register_typo() {
    // The FMA consumes v3, which no instruction writes.
    let src = mutate("vfma.vs v2, v1, f1", "vfma.vs v2, v3, f1");
    expect_flag(&src, Code::UndefRead, "v3 read but never written");
}

#[test]
fn init_on_one_path_only() {
    expect_flag(
        "tid x1\nbeqz x1, skip\nli x5, 7\nskip:\nsd x5, -8(sp)\nhalt\n",
        Code::MaybeUndefRead,
        "x5 written on one branch side only",
    );
}

// --- memory defects -----------------------------------------------------

#[test]
fn oob_base_address_read() {
    // The vld base overwritten with a small constant: the load walks the
    // unmapped zero page (silent zeros at runtime).
    let src = mutate("add     x5, x20, x4", "li      x5, 64");
    expect_flag(&src, Code::OobRead, "bogus base address");
}

#[test]
fn oob_store_past_data() {
    expect_flag(
        ".data\nxs: .dword 1\n.text\nla x1, xs\nsd x0, 4096(x1)\nhalt\n",
        Code::OobWrite,
        "store far past the data image",
    );
}

#[test]
fn misaligned_scalar_load() {
    expect_flag(
        ".data\nxs: .dword 1\n.text\nla x1, xs\nld x2, 3(x1)\nsd x2, -8(sp)\nhalt\n",
        Code::Misaligned,
        "ld at offset 3",
    );
}

#[test]
fn vector_footprint_past_data_end() {
    expect_flag(
        ".data\nys: .dword 1\n.text\nli x1, 32\nsetvl x0, x1\nla x2, ys\nvld v1, x2\nhalt\n",
        Code::OobRead,
        "vld footprint past the data image",
    );
}

#[test]
fn strided_store_escapes_data() {
    expect_flag(
        ".data\nys: .zero 64\n.text\nli x1, 8\nsetvl x0, x1\nvid v1\nla x2, ys\n\
         li x3, 4096\nvsts v1, x2, x3\nhalt\n",
        Code::OobWrite,
        "strided store with a huge stride",
    );
}

// --- SPMD convergence defects ------------------------------------------

#[test]
fn divergent_barrier() {
    // Only threads with tid != 0 reach the barrier: static deadlock risk.
    let src = mutate(
        "    barrier\n",
        "    bnez    x10, join\n    j       out\njoin:\n    barrier\nout:\n",
    );
    expect_flag(&src, Code::DivergentBarrier, "barrier on one branch side");
}

#[test]
fn divergent_vltcfg() {
    expect_flag(
        "tid x1\nbnez x1, cfg\nj done\ncfg:\nli x2, 4\nvltcfg x2\ndone:\nhalt\n",
        Code::DivergentVltcfg,
        "vltcfg on one branch side",
    );
}

// --- structural defects -------------------------------------------------

#[test]
fn missing_halt_falls_off_end() {
    let src = mutate("    barrier\n    halt\n", "    barrier\n");
    expect_flag(&src, Code::OffEnd, "no halt at the end");
}

#[test]
fn branch_target_outside_text() {
    expect_flag("beq x0, x0, 4000\nhalt\n", Code::BadTarget, "branch to a wild offset");
}

#[test]
fn unreachable_tail() {
    expect_flag("halt\nli x1, 1\nsd x1, -8(sp)\nhalt\n", Code::Unreachable, "code after halt");
}

#[test]
fn dead_write_is_flagged() {
    let src = mutate("vst     v2, x6", "vst     v1, x6");
    expect_flag(&src, Code::DeadWrite, "result vector never stored");
}

#[test]
fn masked_op_with_mask_never_set() {
    expect_flag(
        "li x1, 8\nsetvl x0, x1\nvid v1\nvadd.vv v2, v1, v1, vm\nvst v2, sp\nhalt\n",
        Code::MaskReset,
        "masked op with vm at reset",
    );
}

#[test]
fn vector_op_with_vl_at_reset() {
    expect_flag("vid v1\nvst v1, sp\nhalt\n", Code::VlReset, "vector op before setvl");
}

#[test]
fn indirect_flow_is_reported() {
    expect_flag("li x1, 4096\njr x1\nhalt\n", Code::IndirectFlow, "jr present");
}

#[test]
fn corrupt_encoding() {
    use vlt_isa::asm::assemble;
    let mut p = assemble(BASE).unwrap();
    p.text[3] = 0xFE00_0001; // no such opcode
    let r = vlt_verify::verify(&p);
    assert!(r.flags(Code::BadEncoding), "{r}");
}
