//! Differential fuzz for the content-aware footprint analysis: the static
//! per-site address hulls ([`vlt_verify::footprint_hulls`]) must cover
//! every byte a real execution touches at that site.
//!
//! Programs come from the same deterministic generator the engine- and
//! DLP-differential fuzzes use (`crates/exec/tests/support/progen.rs`),
//! which now emits content-steered indexed traffic — gathers, scatters,
//! and scalar accesses whose offsets are *loaded from a table* — so the
//! hulls under test are the ones only the content lattice can produce.
//! Each program is stepped thread by thread under `FuncSim` while the
//! per-site byte footprint is collected from the dynamic trace, then every
//! observed access is checked against the hull of its `(tid, sidx)` site.
//!
//! The contract: the hull is an over-approximation (`static ⊇ dynamic`),
//! and it is *useful* — every store site must come back with finite
//! bounds, because the race analysis is built on bounded write footprints.

use std::collections::BTreeMap;

use vlt_exec::{DynKind, FuncSim, Step};
use vlt_isa::asm::assemble;
use vlt_verify::{footprint_hulls, SiteHull};

#[path = "../../exec/tests/support/progen.rs"]
mod progen;
use progen::gen_program;

const SEEDS: u64 = 40;
const BUDGET: u64 = 4_000_000;

/// Join of all hull entries for one `(tid, sidx)` site (the analysis
/// emits one per reachable access; joining keeps the check valid either
/// way).
fn hull_map(hulls: &[SiteHull]) -> BTreeMap<(usize, usize), SiteHull> {
    let mut m: BTreeMap<(usize, usize), SiteHull> = BTreeMap::new();
    for h in hulls {
        m.entry((h.tid, h.sidx))
            .and_modify(|e| {
                e.lo = e.lo.zip(h.lo).map(|(a, b)| a.min(b));
                e.hi = e.hi.zip(h.hi).map(|(a, b)| a.max(b));
            })
            .or_insert_with(|| h.clone());
    }
    m
}

/// Run the program and collect every dynamic byte access as
/// `(tid, sidx, lo, hi)` half-open byte ranges.
fn dynamic_accesses(sim: &mut FuncSim, threads: usize) -> Vec<(usize, usize, i64, i64)> {
    let mut out = Vec::new();
    let mut steps = 0u64;
    while !sim.all_halted() {
        for t in 0..threads {
            while let Step::Inst(d) =
                sim.step_thread(t).expect("generated programs execute cleanly")
            {
                match d.kind {
                    DynKind::Mem { addr, size } => {
                        out.push((t, d.sidx as usize, addr as i64, addr as i64 + i64::from(size)));
                    }
                    DynKind::VMem { addrs } => {
                        for &a in sim.addrs(addrs) {
                            out.push((t, d.sidx as usize, a as i64, a as i64 + 8));
                        }
                    }
                    DynKind::Barrier => break,
                    _ => {}
                }
                steps += 1;
                assert!(steps < BUDGET, "runaway program");
            }
        }
    }
    out
}

fn check_case(seed: u64, threads: usize) -> (usize, usize) {
    let src = gen_program(seed, threads);
    let prog = assemble(&src).unwrap_or_else(|e| panic!("seed {seed}: bad program: {e}\n{src}"));
    let hulls = footprint_hulls(&prog, threads)
        .unwrap_or_else(|| panic!("seed {seed} x{threads}: footprint analysis gave up\n{src}"));
    let map = hull_map(&hulls);

    // Usefulness: the race analysis needs every write footprint bounded.
    for h in &hulls {
        if h.write {
            assert!(
                h.bounded(),
                "seed {seed} x{threads}: write site {} (tid {}) unbounded\n{src}",
                h.sidx,
                h.tid
            );
        }
    }

    // Soundness: every dynamically observed byte lies inside its hull.
    let mut sim = FuncSim::new(&prog, threads);
    let observed = dynamic_accesses(&mut sim, threads);
    assert!(!observed.is_empty(), "seed {seed} x{threads}: program touched no memory");
    for (t, sidx, lo, hi) in &observed {
        let h = map.get(&(*t, *sidx)).unwrap_or_else(|| {
            panic!("seed {seed} x{threads}: dynamic access at sidx {sidx} (tid {t}) has no static site\n{src}")
        });
        assert!(
            h.covers(*lo, *hi),
            "seed {seed} x{threads}: sidx {sidx} tid {t}: dynamic [{lo}, {hi}) escapes hull \
             [{:?}, {:?})\n{src}",
            h.lo,
            h.hi
        );
    }
    (observed.len(), hulls.iter().filter(|h| h.bounded()).count())
}

/// ≥120 generated indexed programs: `SEEDS` seeds × three thread counts.
#[test]
fn static_hulls_cover_dynamic_footprints() {
    let mut cases = 0usize;
    let mut accesses = 0usize;
    let mut bounded = 0usize;
    for seed in 0..SEEDS {
        for threads in [1usize, 2, 4] {
            let (obs, bnd) = check_case(seed * 131 + threads as u64, threads);
            cases += 1;
            accesses += obs;
            bounded += bnd;
        }
    }
    assert!(cases >= 120, "only {cases} programs checked");
    // The suite must actually exercise the machinery: plenty of dynamic
    // traffic, and a substantial population of finitely-bounded sites.
    assert!(accesses > 10_000, "only {accesses} dynamic accesses observed");
    assert!(bounded > 500, "only {bounded} bounded static sites");
}

/// The steered items must appear and be boundable on their own: a focused
/// program with only content-steered traffic gets finite hulls for every
/// site, including the scatter.
#[test]
fn steered_scatter_hull_is_the_table_hull() {
    let src = "
        .data
    buf:
        .zero 2048
    idx:
        .dword 0, 64, 128, 896, 8, 72, 800, 16
        .text
        tid  x1
        la   x2, buf
        slli x3, x1, 10
        add  x2, x2, x3
        li   x13, 8
        setvl x15, x13
        la   x13, idx
        vld  v1, x13
        vid  v2
        vstx v2, x2, v1
        halt
    ";
    let prog = assemble(src).unwrap();
    let buf = prog.symbol("buf").unwrap() as i64;
    let hulls = footprint_hulls(&prog, 2).expect("boundable");
    let scatter: Vec<&SiteHull> = hulls.iter().filter(|h| h.write).collect();
    assert_eq!(scatter.len(), 2, "one scatter site per thread");
    for h in scatter {
        assert!(h.bounded(), "scatter unbounded for tid {}", h.tid);
        let base = buf + 1024 * h.tid as i64;
        // The content fold bounds the indices to the table hull [0, 896],
        // so the scatter hull is the thread's slice [base, base+904).
        assert!(h.covers(base, base + 904), "hull [{:?}, {:?}) too small", h.lo, h.hi);
        assert!(h.lo.unwrap() >= base, "hull leaks below the slice");
        assert!(h.hi.unwrap() <= base + 1024, "hull leaks into the next slice");
    }
}
