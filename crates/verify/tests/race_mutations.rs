//! Race-mutant corpus: seeded concurrency defects, each of which the
//! static race analysis must flag with the expected diagnostic code. The
//! unmutated base kernel must be race-clean at every tested thread count,
//! so every finding below is attributable to the seeded defect.
//!
//! The base kernel is a two-phase SPMD reduction in the same shape the
//! nine workloads use: phase 1 strip-mines `y += a*x` over a per-thread
//! contiguous slice and scatters per-thread partials into an interleaved
//! (strided) table; a `barrier` publishes the writes; phase 2 reads the
//! *whole* shared array and stores one result per thread. Every mutant
//! perturbs exactly one line of it.

use vlt_isa::asm::assemble;
use vlt_verify::{check_races, Code, Report};

/// Threads the corpus is checked at (the base is clean at both).
const THREADS: [usize; 2] = [2, 4];

/// The race-free base kernel: 64 doubles, 16 per thread at 4 threads.
const BASE: &str = r#"
    .data
xs: .double 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0
    .zero 448
ys: .double 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0
    .zero 448
tab:
    .zero 512
out:
    .zero 64
    .text
    tid     x10
    li      x11, 16            # elems per thread
    mul     x12, x10, x11      # lo
    add     x13, x12, x11      # hi
    la      x20, xs
    la      x21, ys
    li      x4, 2
    fcvt.f.x f1, x4            # a = 2.0
    mv      x14, x12           # i
loop:
    sub     x3, x13, x14
    setvl   x2, x3
    slli    x4, x14, 3
    add     x5, x20, x4
    vld     v1, x5             # x[i..]
    add     x6, x21, x4
    vld     v2, x6             # y[i..]
    vfma.vs v2, v1, f1         # y += a*x
    vst     v2, x6
    add     x14, x14, x2
    blt     x14, x13, loop
    # interleaved partial table: tab[t + 4*e], one strided store per thread
    li      x3, 16
    setvl   x2, x3
    la      x7, tab
    slli    x4, x10, 3
    add     x7, x7, x4         # tab + 8*tid
    li      x8, 32             # byte stride = 8 * nthr_max
    vsts    v2, x7, x8
    barrier
    # phase 2: every thread reduces the whole of ys into its own out slot
    li      x3, 64
    setvl   x2, x3
    vxor.vv v3, v3, v3
    li      x14, 0
    li      x13, 64
loop2:
    sub     x3, x13, x14
    setvl   x2, x3
    slli    x4, x14, 3
    add     x5, x21, x4
    vld     v1, x5             # ys[i..] (written by all threads in epoch 0)
    vadd.vv v3, v3, v1
    add     x14, x14, x2
    blt     x14, x13, loop2
    vredsum x4, v3
    la      x5, out
    slli    x6, x10, 3
    add     x5, x5, x6
    sd      x4, 0(x5)          # out[tid]
    halt
"#;

fn races(src: &str, threads: usize) -> Report {
    let prog = assemble(src).unwrap_or_else(|e| panic!("assembly failed: {e}"));
    check_races(&prog, threads)
}

#[test]
fn base_kernel_is_race_clean() {
    for t in THREADS {
        let r = races(BASE, t);
        assert_eq!(
            r.diags.len(),
            0,
            "base kernel must be race-clean at {t} threads:\n{}",
            r.diags.iter().map(|d| format!("  {d}\n")).collect::<String>()
        );
    }
}

/// Apply a single textual mutation to the base kernel.
fn mutate(from: &str, to: &str) -> String {
    assert!(BASE.contains(from), "mutation site `{from}` not in base");
    BASE.replacen(from, to, 1)
}

/// Verify a mutant at every thread count and assert the expected code fires.
fn expect_race(src: &str, code: Code, what: &str) {
    for t in THREADS {
        let r = races(src, t);
        assert!(
            r.diags.iter().any(|d| d.code == code),
            "{what}: expected {code} to fire at {t} threads, got {} diags:\n{}",
            r.diags.len(),
            r.diags.iter().map(|d| format!("  {d}\n")).collect::<String>()
        );
    }
}

// --- partitioning defects ----------------------------------------------

#[test]
fn tid_offset_off_by_one() {
    // One extra element per slice: thread t's last write lands on thread
    // t+1's first element.
    let src = mutate("add     x13, x12, x11      # hi", "addi    x13, x12, 17       # hi");
    expect_race(&src, Code::RaceWw, "slice hi off by one");
}

#[test]
fn wrong_induction_start() {
    // Every thread strips from 0 instead of its own lo: full overlap.
    let src = mutate("mv      x14, x12           # i", "li      x14, 0             # i");
    expect_race(&src, Code::RaceWw, "induction starts at 0 on every thread");
}

#[test]
fn overlapping_strided_writes() {
    // The partial-table stride collapses from 8*nthr to 8: the interleave
    // becomes a dense overlap of every thread's 16 elements.
    let src = mutate("li      x8, 32             # byte stride = 8 * nthr_max", "li      x8, 8");
    expect_race(&src, Code::RaceWw, "strided scatter with collapsed stride");
}

#[test]
fn vector_overrun_via_setvl() {
    // The strip request ignores the remaining count: vl jumps to the full
    // MVL and the stores run far past the thread's slice.
    let src = mutate(
        "    sub     x3, x13, x14\n    setvl   x2, x3\n    slli    x4, x14, 3",
        "    li      x3, 64\n    setvl   x2, x3\n    slli    x4, x14, 3",
    );
    expect_race(&src, Code::RaceWw, "setvl request ignores remaining count");
}

// --- synchronization defects -------------------------------------------

#[test]
fn missing_barrier() {
    // Phase 2 reads the whole of ys with nothing separating it from the
    // other threads' phase-1 writes.
    let src = mutate("    barrier\n", "");
    expect_race(&src, Code::RaceRw, "missing barrier between phases");
}

#[test]
fn neighbor_read_without_barrier() {
    // The y-load slips one element up: the top of each strip reads the
    // neighbor thread's first element while the neighbor is writing it.
    let src = mutate(
        "    vld     v2, x6             # y[i..]\n",
        "    addi    x7, x6, 8\n    vld     v2, x7\n",
    );
    expect_race(&src, Code::RaceRw, "shifted read crosses the slice seam");
}

#[test]
fn racy_reduction() {
    // Every thread stores its reduction to out[0] instead of out[tid].
    let src = mutate("    slli    x6, x10, 3\n    add     x5, x5, x6\n", "");
    expect_race(&src, Code::RaceWw, "shared accumulator store");
}

// --- data-dependent addressing -----------------------------------------

#[test]
fn loaded_index_scatter() {
    // The partial table is scattered through an index vector loaded from
    // memory: the footprint cannot be bounded statically.
    let src = mutate(
        "    li      x8, 32             # byte stride = 8 * nthr_max\n    vsts    v2, x7, x8\n",
        "    vld     v4, x7\n    vstx    v2, x7, v4\n",
    );
    expect_race(&src, Code::RaceUnknown, "scatter through loaded indices");
}

// --- the dynamic side sees the same defects ----------------------------

/// The two mutants whose races actually fire on the canonical schedule
/// must also be caught by the dynamic epoch checker, and every dynamic
/// conflict must be statically predicted (the `debug_assert` inside the
/// checker aborts a debug build otherwise).
#[test]
fn dynamic_checker_confirms_static_verdicts() {
    use vlt_exec::{FuncSim, RaceConfig};
    use vlt_verify::predicted_race_sites;

    let overlap = mutate("mv      x14, x12           # i", "li      x14, 0             # i");
    let no_barrier = mutate("    barrier\n", "");
    for (src, what) in [(&overlap, "wrong induction start"), (&no_barrier, "missing barrier")] {
        let prog = assemble(src).unwrap();
        let predicted = predicted_race_sites(&prog, 4);
        let mut sim = FuncSim::new(&prog, 4);
        sim.enable_race_checker(RaceConfig {
            predictor: Some(Box::new(move |sidx| predicted.contains(&sidx))),
        });
        sim.run_to_completion(1_000_000).unwrap();
        let rc = sim.race_checker().unwrap();
        assert!(!rc.is_clean(), "{what}: dynamic checker saw no conflict");
    }
}
