//! DLP-mutant corpus: seeded profile-changing mutations of a baseline
//! kernel, each of which the static analyzer must *catch* — meaning the
//! mutant's static profile (a) differs from the baseline's in exactly the
//! dimension the mutation targets, and (b) still matches the functional
//! simulator's measurement of the mutant bit-for-bit. A mutation the
//! analyzer glossed over would fail (a); a mis-tracked one would fail (b).
//!
//! The corpus covers the analyzer's main failure surfaces: `setvl`
//! request tracking (including over-MVL clamping), masked-element
//! counting on loads and stores, mask-register width changes, loop trip
//! counts, scalar/vector op attribution, stride classification and bank
//! conflicts, address-pattern classification, and region attribution.

use vlt_exec::FuncSim;
use vlt_isa::asm::assemble;
use vlt_isa::VMemPattern;
use vlt_verify::dlp::{advise, analyze, dlp_report, DlpOptions, DlpProfile};

/// A strip-mine-shaped kernel exercising every profiled feature: a fixed
/// `setvl`, masked and unmasked unit-stride vector memory, a strided
/// gather, scalar bookkeeping, a counted loop, and a `region` marker.
const BASELINE: &str = r#"
        .data
    a:
        .zero 2048
    b:
        .zero 2048
        .text
        la   x20, a
        la   x21, b
        li   x5, 24
        li   x14, 4
        li   x7, 5
        vmsetb x7
        li   x13, 8
        region 1
    loop:
        setvl x2, x5
        vld  v1, x20
        vld  v2, x21, vm
        vadd.vv v3, v1, v2
        vst  v3, x20
        vlds v4, x21, x13
        addi x14, x14, -1
        bnez x14, loop
        region 0
        barrier
        halt
"#;

struct Mutant {
    name: &'static str,
    from: &'static str,
    to: &'static str,
    /// The targeted dimension must differ between baseline and mutant.
    caught: fn(&DlpProfile, &DlpProfile) -> bool,
}

const MUTANTS: &[Mutant] = &[
    Mutant {
        name: "setvl-request-shrunk",
        from: "li   x5, 24",
        to: "li   x5, 7",
        caught: |b, m| {
            m.total.common_vls(1) != b.total.common_vls(1)
                && m.total.avg_vl() < b.total.avg_vl()
                && m.setvl_sites[0].max_request == 7
        },
    },
    Mutant {
        name: "setvl-request-overclamped",
        from: "li   x5, 24",
        to: "li   x5, 100",
        caught: |b, m| {
            // The request is tracked pre-clamp; the histogram post-clamp.
            m.setvl_sites[0].max_request == 100
                && m.total.common_vls(1) == vec![64]
                && m.total.avg_vl() > b.total.avg_vl()
        },
    },
    Mutant {
        name: "mask-dropped-from-load",
        from: "vld  v2, x21, vm",
        to: "vld  v2, x21",
        caught: |b, m| {
            m.total.elem_ops > b.total.elem_ops
                && m.total.pct_vectorization() > b.total.pct_vectorization()
        },
    },
    Mutant {
        name: "mask-added-to-store",
        from: "vst  v3, x20",
        to: "vst  v3, x20, vm",
        caught: |b, m| m.total.elem_ops < b.total.elem_ops,
    },
    Mutant {
        name: "mask-widened",
        from: "li   x7, 5",
        to: "li   x7, 255",
        caught: |b, m| m.total.elem_ops > b.total.elem_ops,
    },
    Mutant {
        name: "trip-count-raised",
        from: "li   x14, 4",
        to: "li   x14, 6",
        caught: |b, m| m.total.insts > b.total.insts && m.total.vector_insts > b.total.vector_insts,
    },
    Mutant {
        name: "scalar-bookkeeping-added",
        from: "addi x14, x14, -1",
        to: "addi x16, x0, 7\n        xor  x16, x16, x14\n        addi x14, x14, -1",
        caught: |b, m| {
            m.total.scalar_ops > b.total.scalar_ops
                && m.total.pct_vectorization() < b.total.pct_vectorization()
        },
    },
    Mutant {
        name: "vector-op-added",
        from: "vadd.vv v3, v1, v2",
        to: "vadd.vv v3, v1, v2\n        vxor.vv v3, v3, v1",
        caught: |b, m| m.total.vector_insts > b.total.vector_insts,
    },
    Mutant {
        name: "stride-bank-conflict",
        from: "li   x13, 8",
        to: "li   x13, 64",
        caught: |b, m| {
            let conflicts =
                |p: &DlpProfile| -> u64 { p.vmem_sites.iter().map(|s| s.conflict_execs).sum() };
            conflicts(b) == 0 && conflicts(m) > 0 && m.vmem_sites.iter().any(|s| s.min_stride == 64)
        },
    },
    Mutant {
        name: "gather-became-unit",
        from: "vlds v4, x21, x13",
        to: "vld  v4, x21",
        caught: |b, m| {
            let strided = |p: &DlpProfile| -> u64 {
                p.vmem_sites
                    .iter()
                    .filter(|s| s.pattern == VMemPattern::Strided)
                    .map(|s| s.execs)
                    .sum()
            };
            strided(b) > 0 && strided(m) == 0
        },
    },
    Mutant {
        name: "region-marker-lost",
        from: "region 1",
        to: "region 0",
        caught: |b, m| {
            let in_region = |p: &DlpProfile| -> u64 {
                p.regions.iter().filter(|r| r.region != 0).map(|r| r.profile.insts).sum()
            };
            in_region(b) > 0 && in_region(m) == 0
        },
    },
];

fn static_and_dynamic(src: &str, what: &str) -> DlpProfile {
    let prog = assemble(src).unwrap_or_else(|e| panic!("{what}: {e}"));
    let p = analyze(&prog, &DlpOptions::default());
    assert!(p.exact, "{what}: walk went inexact: {:?}", p.notes);
    // Every mutant profile must still be the truth: bit-exact vs the run.
    let mut sim = FuncSim::new(&prog, 1);
    let s = sim.run_to_completion(1_000_000).unwrap();
    assert_eq!(p.total.insts, s.insts, "{what}: insts");
    assert_eq!(p.total.scalar_ops, s.scalar_ops, "{what}: scalar ops");
    assert_eq!(p.total.vector_insts, s.vector_insts, "{what}: vector insts");
    assert_eq!(p.total.elem_ops, s.elem_ops, "{what}: elem ops");
    assert_eq!(p.total.vl_histogram.as_slice(), s.vl_histogram.as_slice(), "{what}: histogram");
    p
}

#[test]
fn every_mutant_is_caught() {
    assert!(MUTANTS.len() >= 10, "corpus shrank below the contract");
    let base = static_and_dynamic(BASELINE, "baseline");
    for m in MUTANTS {
        let src = BASELINE.replace(m.from, m.to);
        assert_ne!(src, BASELINE, "{}: mutation site `{}` not found", m.name, m.from);
        let mutant = static_and_dynamic(&src, m.name);
        assert!(
            (m.caught)(&base, &mutant),
            "{}: analyzer did not catch the mutation\nbaseline: {:?}\nmutant: {:?}",
            m.name,
            base.total,
            mutant.total
        );
    }
}

#[test]
fn stride_conflict_mutant_raises_the_diagnostic() {
    let src = BASELINE.replace("li   x13, 8", "li   x13, 64");
    let prog = assemble(&src).unwrap();
    let (_, diags) = dlp_report(&prog, &DlpOptions::default());
    assert!(
        diags.iter().any(|d| d.code.name() == "dlp-stride-conflict"),
        "expected dlp-stride-conflict, got: {diags:?}"
    );
    let prog = assemble(BASELINE).unwrap();
    let (_, diags) = dlp_report(&prog, &DlpOptions::default());
    assert!(
        !diags.iter().any(|d| d.code.name() == "dlp-stride-conflict"),
        "baseline should be conflict-free, got: {diags:?}"
    );
}

#[test]
fn region_mutant_erases_the_advisors_opportunity() {
    let base = analyze(&assemble(BASELINE).unwrap(), &DlpOptions::default());
    let src = BASELINE.replace("region 1", "region 0");
    let mutant = analyze(&assemble(&src).unwrap(), &DlpOptions::default());
    let (ab, am) = (advise(&base), advise(&mutant));
    assert!(ab.opportunity_pct > 50.0, "baseline opportunity: {:.1}", ab.opportunity_pct);
    assert_eq!(am.opportunity_pct, 0.0, "mutant opportunity: {:.1}", am.opportunity_pct);
}
