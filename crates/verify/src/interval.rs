//! A small signed-interval domain.
//!
//! Shared by the abstract interpreter (`absint`, which threads an interval
//! alongside its constant domain to prove whole-range memory bounds), the
//! footprint/race analyses (whose `Rng = (Option<i64>, Option<i64>)` pairs
//! are exactly this shape), and the static DLP analyzer. `None` on either
//! side means unbounded; when both bounds are present `lo <= hi` holds.
//! Arithmetic saturates to unbounded on `i64` overflow, which keeps the
//! domain sound for the wrapping machine semantics: a bound is only ever
//! claimed when the true machine value cannot have wrapped past it.

/// A signed interval `[lo, hi]` with optional (absent = infinite) bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Iv {
    /// Inclusive lower bound (`None` = -inf).
    pub lo: Option<i64>,
    /// Inclusive upper bound (`None` = +inf).
    pub hi: Option<i64>,
}

impl Iv {
    /// The full interval (no information).
    pub const TOP: Iv = Iv { lo: None, hi: None };

    /// A single known value.
    pub fn exact(k: i64) -> Iv {
        Iv { lo: Some(k), hi: Some(k) }
    }

    /// A bounded interval; callers must pass `lo <= hi`.
    pub fn new(lo: i64, hi: i64) -> Iv {
        debug_assert!(lo <= hi);
        Iv { lo: Some(lo), hi: Some(hi) }
    }

    /// True when neither side is bounded.
    pub fn is_top(self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }

    /// The value if the interval pins exactly one.
    pub fn as_const(self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// True if `k` lies inside the interval.
    pub fn contains(self, k: i64) -> bool {
        self.lo.is_none_or(|l| l <= k) && self.hi.is_none_or(|h| k <= h)
    }

    /// Convex hull (the join of the lattice).
    pub fn join(self, other: Iv) -> Iv {
        Iv { lo: min_opt_lo(self.lo, other.lo), hi: max_opt_hi(self.hi, other.hi) }
    }

    /// Widen against the previous iterate: any side that moved outward
    /// jumps straight to unbounded. With this, chains of joins terminate
    /// in at most two steps per side, which is what lets `absint` keep
    /// iterating its fixpoint to state *equality*.
    pub fn widen(self, prev: Iv) -> Iv {
        Iv {
            lo: match (self.lo, prev.lo) {
                (Some(n), Some(p)) if n < p => None,
                (Some(n), Some(_)) => Some(n),
                _ => None,
            },
            hi: match (self.hi, prev.hi) {
                (Some(n), Some(p)) if n > p => None,
                (Some(n), Some(_)) => Some(n),
                _ => None,
            },
        }
    }

    /// Join with delayed widening: the precise hull while it stays no
    /// wider than `cap`, after which any side that grew past `self`'s
    /// jumps to unbounded. Hulls only ever expand across fixpoint
    /// iterations, so each side is monotone and the width cap bounds the
    /// number of distinct iterates — the equality-driven fixpoint in
    /// `absint` terminates without per-block visit counters.
    pub fn join_widen(self, other: Iv, cap: i64) -> Iv {
        let j = self.join(other);
        if let (Some(l), Some(h)) = (j.lo, j.hi) {
            if h.checked_sub(l).is_some_and(|w| w <= cap) {
                return j;
            }
        }
        Iv {
            lo: match (j.lo, self.lo) {
                (Some(n), Some(p)) if n >= p => Some(n),
                _ => None,
            },
            hi: match (j.hi, self.hi) {
                (Some(n), Some(p)) if n <= p => Some(n),
                _ => None,
            },
        }
    }

    /// Interval addition (unbounded on overflow).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Iv) -> Iv {
        Iv {
            lo: opt2(self.lo, other.lo, i64::checked_add),
            hi: opt2(self.hi, other.hi, i64::checked_add),
        }
    }

    /// Add a constant to both bounds.
    pub fn add_k(self, k: i64) -> Iv {
        self.add(Iv::exact(k))
    }

    /// Interval subtraction (unbounded on overflow).
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Iv) -> Iv {
        Iv {
            lo: opt2(self.lo, other.hi, i64::checked_sub),
            hi: opt2(self.hi, other.lo, i64::checked_sub),
        }
    }

    /// Interval multiplication. Requires both operands fully bounded
    /// (otherwise top), and saturates to top on any corner overflow.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Iv) -> Iv {
        let (Some(al), Some(ah), Some(bl), Some(bh)) = (self.lo, self.hi, other.lo, other.hi)
        else {
            return Iv::TOP;
        };
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for a in [al, ah] {
            for b in [bl, bh] {
                match a.checked_mul(b) {
                    Some(p) => {
                        lo = lo.min(p);
                        hi = hi.max(p);
                    }
                    None => return Iv::TOP,
                }
            }
        }
        Iv::new(lo, hi)
    }

    /// Left shift by a known amount (multiply by `2^k`).
    pub fn shl_k(self, k: u32) -> Iv {
        match 1i64.checked_shl(k) {
            Some(m) => self.mul(Iv::exact(m)),
            None => Iv::TOP,
        }
    }

    /// `x & imm` for a known non-negative mask: the result is in
    /// `[0, imm]` regardless of `x`. Negative masks give top.
    pub fn and_k(imm: i64) -> Iv {
        if imm >= 0 {
            Iv::new(0, imm)
        } else {
            Iv::TOP
        }
    }

    /// The footprint analyses' range-pair form.
    pub fn to_rng(self) -> (Option<i64>, Option<i64>) {
        (self.lo, self.hi)
    }

    /// Build from the footprint analyses' range-pair form.
    pub fn from_rng(r: (Option<i64>, Option<i64>)) -> Iv {
        match (r.0, r.1) {
            (Some(l), Some(h)) if l > h => Iv::TOP, // empty/contradictory: no claim
            _ => Iv { lo: r.0, hi: r.1 },
        }
    }
}

fn opt2(a: Option<i64>, b: Option<i64>, f: impl Fn(i64, i64) -> Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(a), Some(b)) => f(a, b),
        _ => None,
    }
}

fn min_opt_lo(a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        _ => None,
    }
}

fn max_opt_hi(a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.max(b)),
        _ => None,
    }
}

/// The tighter of two lower bounds (`None` = unbounded). Shared with the
/// race analysis' range intersections.
pub(crate) fn max_opt(a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (Some(a), None) | (None, Some(a)) => Some(a),
        (None, None) => None,
    }
}

/// The tighter of two upper bounds (`None` = unbounded).
pub(crate) fn min_opt(a: Option<i64>, b: Option<i64>) -> Option<i64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (Some(a), None) | (None, Some(a)) => Some(a),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_join() {
        let a = Iv::exact(3);
        let b = Iv::exact(10);
        assert_eq!(a.as_const(), Some(3));
        let j = a.join(b);
        assert_eq!(j, Iv::new(3, 10));
        assert!(j.contains(7));
        assert!(!j.contains(11));
    }

    #[test]
    fn widening_terminates_growth() {
        let prev = Iv::new(0, 10);
        let grown = Iv::new(0, 20).widen(prev);
        assert_eq!(grown, Iv { lo: Some(0), hi: None });
        // A stable side survives widening untouched.
        let stable = Iv::new(0, 10).widen(prev);
        assert_eq!(stable, prev);
    }

    #[test]
    fn arithmetic_saturates() {
        let big = Iv::exact(i64::MAX);
        assert_eq!(big.add_k(1), Iv::TOP);
        assert_eq!(Iv::new(2, 4).add(Iv::new(-1, 1)), Iv::new(1, 5));
        assert_eq!(Iv::new(2, 4).sub(Iv::new(1, 1)), Iv::new(1, 3));
        assert_eq!(Iv::new(-3, 4).mul(Iv::exact(-2)), Iv::new(-8, 6));
        assert_eq!(Iv::new(1, 3).shl_k(3), Iv::new(8, 24));
        assert_eq!(Iv::and_k(63), Iv::new(0, 63));
        assert_eq!(Iv::and_k(-1), Iv::TOP);
    }

    #[test]
    fn rng_roundtrip() {
        let r = (Some(4), None);
        assert_eq!(Iv::from_rng(r).to_rng(), r);
        assert_eq!(Iv::from_rng((Some(5), Some(2))), Iv::TOP);
    }

    #[test]
    fn overflow_saturates_per_side() {
        // Each bound saturates independently: an overflowing corner loses
        // only its own side, never fabricates a tighter one.
        let hi_edge = Iv::new(0, i64::MAX);
        let sum = hi_edge.add(Iv::new(0, 1));
        assert_eq!(sum, Iv { lo: Some(0), hi: None });
        let lo_edge = Iv::new(i64::MIN, 0);
        let diff = lo_edge.sub(Iv::new(0, 1));
        assert_eq!(diff, Iv { lo: None, hi: Some(0) });
        // Multiplication bails to top on ANY corner overflow, even when
        // the surviving corners would look bounded.
        assert_eq!(Iv::new(i64::MIN, 2).mul(Iv::exact(2)), Iv::TOP);
        assert_eq!(Iv::new(-2, 2).mul(Iv::new(i64::MIN / 2, 1)), Iv::TOP);
        // Full-width shift requests give top, not a wrapped constant.
        assert_eq!(Iv::new(1, 2).shl_k(63), Iv::TOP);
        assert_eq!(Iv::new(1, 2).shl_k(64), Iv::TOP);
        assert_eq!(Iv::exact(1).shl_k(62), Iv::exact(1 << 62));
    }

    #[test]
    fn half_bounded_arithmetic() {
        let ge0 = Iv { lo: Some(0), hi: None };
        assert_eq!(ge0.add_k(5), Iv { lo: Some(5), hi: None });
        assert_eq!(ge0.sub(Iv::exact(3)), Iv { lo: Some(-3), hi: None });
        // Any unbounded side makes a product unbounded on both sides (sign
        // of the other operand could flip the open side).
        assert_eq!(ge0.mul(Iv::exact(-1)), Iv::TOP);
        assert!(ge0.contains(i64::MAX));
        assert!(!ge0.contains(-1));
    }

    #[test]
    fn empty_interval_propagates_as_top() {
        // A contradictory range pair (the footprint analyses produce these
        // when refinements conflict) must degrade to "no claim", and stay
        // there through arithmetic and joins.
        let e = Iv::from_rng((Some(5), Some(2)));
        assert!(e.is_top());
        assert!(e.add_k(1).is_top());
        assert!(e.join(Iv::exact(7)).is_top());
        assert_eq!(e.mul(Iv::exact(2)), Iv::TOP);
        // from_rng only normalizes fully-bounded contradictions; half
        // bounded pairs pass through untouched.
        assert_eq!(Iv::from_rng((None, Some(-3))), Iv { lo: None, hi: Some(-3) });
    }

    #[test]
    fn widening_on_self_loops_terminates() {
        // A self-loop that grows its iterate every sweep: widen jumps the
        // moving side to unbounded in one step, and is then a fixpoint.
        let mut cur = Iv::new(0, 0);
        let mut steps = 0;
        loop {
            let next = cur.join(cur.add_k(8)); // loop body: x' = x + 8
            let w = next.widen(cur);
            steps += 1;
            if w == cur {
                break;
            }
            cur = w;
            assert!(steps < 4, "widening failed to stabilize");
        }
        assert_eq!(cur, Iv { lo: Some(0), hi: None });

        // join_widen with a cap: precise until the width cap, then one
        // jump. The downward direction behaves symmetrically.
        let mut cur = Iv::new(0, 0);
        for k in 1..=4 {
            cur = cur.join_widen(Iv::new(0, 10 * k), 25);
        }
        assert_eq!(cur, Iv { lo: Some(0), hi: None });
        let mut cur = Iv::new(0, 0);
        for k in 1..=4 {
            cur = cur.join_widen(Iv::new(-10 * k, 0), 25);
        }
        assert_eq!(cur, Iv { lo: None, hi: Some(0) });
        // A side pinned by the cap window stays precise.
        let stable = Iv::new(0, 10).join_widen(Iv::new(3, 12), 25);
        assert_eq!(stable, Iv::new(0, 12));
    }
}
