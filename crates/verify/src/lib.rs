#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Static verifier and lint pass (`vlint`) for assembled VLT programs.
//!
//! Every workload in this reproduction is a hand-written kernel, so the
//! only runtime defense against a silently-wrong program is a crash or a
//! bad number deep inside `vlt-exec`. This crate checks an assembled
//! [`vlt_isa::Program`] *before* it executes:
//!
//! 1. decodes the text section ([`Code::BadEncoding`]) and builds a CFG
//!    ([`Cfg`]) over it,
//! 2. runs a forward abstract interpretation for def-before-use, constant
//!    propagation, and `vl`/`vltcfg`/`vm` state (module `absint`),
//! 3. statically checks constant-addressed memory accesses against the
//!    `DATA_BASE`/`STACK_BASE` layout, including alignment,
//! 4. checks SPMD convergence of `barrier` and `vltcfg` against branch
//!    structure (module `structure`),
//! 5. runs a backward liveness pass for dead writes (module `liveness`).
//!
//! Findings are [`Diagnostic`]s with a stable [`Code`], a severity, the
//! offending instruction's index and disassembly, and a message. Programs
//! can suppress a lint by defining an assembler constant named
//! `vlint.allow.<code>` (see [`Options::with_program_allows`]).
//!
//! The entry points are [`verify`] (default options plus program-embedded
//! allows) and [`verify_with`]; [`verify_source`] assembles first. The
//! `vlint` binary wraps these for `.s` files on disk.

use std::collections::BTreeSet;

use vlt_isa::asm::assemble;
use vlt_isa::{decode, disasm, Inst, IsaError, Program};

mod absint;
mod cfg;
mod content;
mod diag;
pub mod dlp;
mod footprint;
mod interval;
pub mod json;
mod liveness;
mod races;
mod structure;

pub use absint::{AbsState, Cv, Init};
pub use cfg::{direct_target, Block, Cfg, Term};
pub use diag::{Code, Diagnostic, Options, Report, Severity};
pub use interval::Iv;
pub use races::{check_races, check_races_with, footprint_hulls, predicted_race_sites, SiteHull};

/// Verify an assembled program with default options plus any
/// program-embedded `vlint.allow.*` symbols.
pub fn verify(prog: &Program) -> Report {
    verify_with(prog, &Options::default().with_program_allows(prog))
}

/// Verify an assembled program under explicit options.
pub fn verify_with(prog: &Program, opts: &Options) -> Report {
    let mut raws: Vec<absint::RawDiag> = Vec::new();

    // Decode word by word so a bad encoding is a finding, not a panic.
    // Undecodable words analyze as `nop` to keep indices aligned.
    let mut insts = Vec::with_capacity(prog.text.len());
    for (i, &w) in prog.text.iter().enumerate() {
        match decode(w) {
            Ok(inst) => insts.push(inst),
            Err(e) => {
                raws.push((Code::BadEncoding, i, format!("text word {w:#010x}: {e}")));
                insts.push(Inst::NOP);
            }
        }
    }

    if insts.is_empty() {
        let d = Diagnostic {
            code: Code::OffEnd,
            severity: Code::OffEnd.severity(),
            sidx: None,
            disasm: String::new(),
            msg: "empty text section: execution faults at the entry point".to_string(),
        };
        return Report { diags: vec![d], suppressed: 0 };
    }

    let cfg = Cfg::build(insts);
    raws.extend(absint::run(&cfg, prog, opts));
    raws.extend(liveness::dead_writes(&cfg));
    raws.extend(structure::check(&cfg));

    // Sort by site then code, drop exact duplicates, apply allows.
    raws.sort_by(|a, b| (a.1, a.0, &a.2).cmp(&(b.1, b.0, &b.2)));
    raws.dedup();
    let mut report = Report::default();
    for (code, sidx, msg) in raws {
        if opts.allow.contains(&code) {
            report.suppressed += 1;
            continue;
        }
        report.diags.push(Diagnostic {
            code,
            severity: code.severity(),
            sidx: Some(sidx),
            disasm: disasm(&cfg.insts[sidx]),
            msg,
        });
    }
    report
}

/// Assemble a source listing and verify the result.
pub fn verify_source(src: &str) -> Result<Report, IsaError> {
    Ok(verify(&assemble(src)?))
}

/// The static-instruction indices at which the verifier considers an
/// undefined-register read possible (`undef-read` or `maybe-undef-read`,
/// including allow-suppressed ones). The dynamic checked mode in
/// `vlt-exec` asserts that every undefined read it observes at runtime was
/// in this set — the static analysis is complete for definedness as long
/// as control flow is direct (`jr`/`jalr` break the guarantee, which is
/// why [`Code::IndirectFlow`] exists).
pub fn predicted_undef_reads(prog: &Program, opts: &Options) -> BTreeSet<usize> {
    let mut wide = opts.clone();
    wide.allow.remove(&Code::UndefRead);
    wide.allow.remove(&Code::MaybeUndefRead);
    verify_with(prog, &wide)
        .diags
        .iter()
        .filter(|d| matches!(d.code, Code::UndefRead | Code::MaybeUndefRead))
        .filter_map(|d| d.sidx)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_program_is_clean() {
        let r = verify_source(
            ".data\nxs: .dword 1, 2, 3, 4\n.text\n\
             li x1, 4\nsetvl x2, x1\nla x3, xs\nvld v1, x3\n\
             vadd.vv v2, v1, v1\nvst v2, x3\nhalt\n",
        )
        .unwrap();
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.diags.len(), 0, "{r}");
    }

    #[test]
    fn bad_encoding_reported() {
        let mut p = assemble("halt\n").unwrap();
        p.text.insert(0, 0xFF00_0000); // no opcode 0xFF
        let r = verify(&p);
        assert!(r.flags(Code::BadEncoding));
    }

    #[test]
    fn allows_suppress_and_count() {
        let src = "li x1, 7\nli x1, 8\nsd x1, -8(sp)\nhalt\n";
        let r = verify_source(src).unwrap();
        assert!(r.flags(Code::DeadWrite));
        let p = assemble(src).unwrap();
        let r2 = verify_with(&p, &Options::default().allow(Code::DeadWrite));
        assert!(!r2.flags(Code::DeadWrite));
        assert_eq!(r2.suppressed, 1);
    }

    #[test]
    fn program_embedded_allow() {
        let src = ".eq vlint.allow.dead_write, 1\nli x1, 7\nli x1, 8\nsd x1, -8(sp)\nhalt\n";
        let r = verify_source(src).unwrap();
        assert!(!r.flags(Code::DeadWrite));
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn predicted_undef_reads_include_maybe() {
        let p = assemble("beqz x0, skip\nli x5, 1\nskip:\nadd x1, x5, x0\nsd x1, -8(sp)\nhalt\n")
            .unwrap();
        let set = predicted_undef_reads(&p, &Options::default());
        assert!(set.contains(&2), "{set:?}"); // the `add` reading x5
    }

    #[test]
    fn diagnostics_are_ordered_and_deduped() {
        let r = verify_source("add x1, x2, x3\nadd x4, x2, x2\nhalt\n").unwrap();
        let sites: Vec<_> = r.diags.iter().map(|d| d.sidx).collect();
        let mut sorted = sites.clone();
        sorted.sort();
        assert_eq!(sites, sorted);
    }
}
