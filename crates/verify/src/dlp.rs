//! Static DLP & occupancy analysis (DESIGN.md §13).
//!
//! Predicts, without running the functional simulator's full dynamic
//! schedule, the Table-4 quantities of the paper — the VL histogram, the
//! vectorization percentage, the scalar/vector operation ratio, and the
//! stride/bank behavior of vector memory ops — per program, per `region`
//! marker, and per barrier epoch, and turns them into VLTCFG partition
//! advice (`vladvise` in `vlt-bench`, `vlint --dlp` here).
//!
//! # How the analysis stays exact
//!
//! The walker drives the real interpreter ([`vlt_exec::interp::step`]) one
//! thread at a time, so every count it produces is *by construction* the
//! count [`vlt_exec::RunSummary`] would report — there is no separate
//! abstract semantics to drift out of sync. Two things are layered on top:
//!
//! * a **knownness shadow**: every register and byte of memory is tracked
//!   as trusted or untrusted. Values become untrusted when they are
//!   summarized by loop acceleration or (in shared mode) loaded from a
//!   range another thread writes. The walk *bails* the moment an untrusted
//!   value would steer control flow, address memory, or set `vl` — so a
//!   completed walk is exact, and an incomplete one is reported as a
//!   partial lower bound ([`DlpProfile::exact`] = false, `dlp-inexact`).
//! * **loop acceleration**: a self-looping basic block whose integer
//!   effect is verified linear (two trial iterations with equal deltas, a
//!   fixed point of the block's affine update, hence stable forever) has
//!   its remaining trip count solved in closed form from the loop branch,
//!   and `k` iterations of statistics are committed in O(1). Values the
//!   summary cannot reproduce (FP/vector state, moving stores) are marked
//!   untrusted rather than guessed, and the solved `k` is clamped to
//!   windows in which the closed form provably matches the wrapping
//!   machine arithmetic — underestimating `k` is always safe because the
//!   loop simply continues concretely.
//!
//! In shared mode ([`DlpOptions::threads`] > 1) a two-pass scheme makes
//! the per-thread walks sound without modeling interleavings: pass 1
//! collects every thread's written ranges optimistically; pass 2 re-walks
//! each thread with the union of *other* threads' writes as untrusted
//! ranges. If every thread completes pass 2 exactly, no cross-thread value
//! ever influenced addresses or control, so the pass-1 addresses are
//! schedule-independent. This is what lets the race analysis use
//! [`site_bounds`] to prune statically-disjoint access pairs.

use std::collections::BTreeMap;

use vlt_exec::{
    interp, AddrArena, ArchState, DecodedProgram, DynInst, DynKind, Memory, StaticInst,
};
use vlt_isa::{disasm, Op, OpClass, Program, RegRef, VMemPattern, MAX_VL};

use crate::cfg::{Cfg, Term};
use crate::diag::{Code, Diagnostic};

/// Upper bound on a single committed trip count, far above any real loop
/// but small enough that `k * per_iteration_counts` cannot overflow `u64`.
const K_CAP: i128 = 1 << 40;

/// Options for [`analyze`].
#[derive(Debug, Clone)]
pub struct DlpOptions {
    /// Thread count to analyze under (1 = the serial walk).
    pub threads: usize,
    /// Concrete interpreter steps allowed per thread walk before the
    /// profile is cut off as a partial lower bound.
    pub budget: u64,
    /// Enable loop acceleration (closed-form trip counts). Disabling it
    /// forces a fully concrete walk, which is exact whenever it finishes
    /// within budget.
    pub accelerate: bool,
    /// L2 bank count for the bank-conflict classification of strided and
    /// indexed vector memory ops.
    pub banks: usize,
    /// Maximum number of per-barrier-epoch profiles kept; later epochs
    /// accumulate into the last slot.
    pub epoch_cap: usize,
}

impl Default for DlpOptions {
    fn default() -> Self {
        DlpOptions { threads: 1, budget: 50_000_000, accelerate: true, banks: 8, epoch_cap: 64 }
    }
}

// ---------------------------------------------------------------------------
// Byte-range set (untrusted memory tracking)
// ---------------------------------------------------------------------------

/// A set of disjoint, coalesced half-open byte ranges.
#[derive(Debug, Clone, Default)]
pub(crate) struct RangeSet {
    m: BTreeMap<u64, u64>, // start -> end (exclusive)
}

impl RangeSet {
    pub(crate) fn insert(&mut self, lo: u64, hi: u64) {
        if lo >= hi {
            return;
        }
        let (mut lo, mut hi) = (lo, hi);
        // Merge every range that overlaps or is adjacent. Starts and ends
        // are both sorted (disjointness), so walking backwards from the
        // first start <= hi visits exactly the mergeable ranges.
        let mut dead = Vec::new();
        for (&s, &e) in self.m.range(..=hi).rev() {
            if e < lo {
                break;
            }
            dead.push(s);
            lo = lo.min(s);
            hi = hi.max(e);
        }
        for s in dead {
            self.m.remove(&s);
        }
        self.m.insert(lo, hi);
    }

    pub(crate) fn remove(&mut self, lo: u64, hi: u64) {
        if lo >= hi {
            return;
        }
        let hit: Vec<(u64, u64)> =
            self.m.range(..hi).rev().take_while(|&(_, &e)| e > lo).map(|(&s, &e)| (s, e)).collect();
        for (s, e) in hit {
            self.m.remove(&s);
            if s < lo {
                self.m.insert(s, lo);
            }
            if e > hi {
                self.m.insert(hi, e);
            }
        }
    }

    pub(crate) fn intersects(&self, lo: u64, hi: u64) -> bool {
        lo < hi && self.m.range(..hi).next_back().is_some_and(|(_, &e)| e > lo)
    }
}

// ---------------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------------

/// Operation counts in exactly the shape of [`vlt_exec::RunSummary`]: the
/// statistic methods reproduce its formulas so static and dynamic numbers
/// are comparable digit for digit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Dynamic instructions (including barriers/halts, like `RunSummary`).
    pub insts: u64,
    /// Scalar operations (vector bookkeeping/system ops excluded).
    pub scalar_ops: u64,
    /// Vector instructions issued.
    pub vector_insts: u64,
    /// Vector element operations (post-mask).
    pub elem_ops: u64,
    /// `vl_histogram[v]` = vector instructions executed at VL `v`.
    pub vl_histogram: [u64; MAX_VL + 1],
}

impl Default for Profile {
    fn default() -> Self {
        Profile {
            insts: 0,
            scalar_ops: 0,
            vector_insts: 0,
            elem_ops: 0,
            vl_histogram: [0; MAX_VL + 1],
        }
    }
}

impl Profile {
    /// Record one dynamic instruction, mirroring the functional
    /// simulator's `record_into` (plus the `insts` count).
    fn record(&mut self, class: OpClass, d: &DynInst) {
        self.insts += 1;
        if class.is_vector() {
            self.vector_insts += 1;
            self.elem_ops += d.elems() as u64;
            if d.vl > 0 {
                self.vl_histogram[(d.vl as usize).min(MAX_VL)] += 1;
            }
        } else if !matches!(d.kind, DynKind::Barrier | DynKind::Halt | DynKind::VltCfg { .. }) {
            self.scalar_ops += 1;
        }
    }

    /// Add `k` copies of `other` (loop-acceleration commit, merging).
    fn add_scaled(&mut self, other: &Profile, k: u64) {
        self.insts += other.insts * k;
        self.scalar_ops += other.scalar_ops * k;
        self.vector_insts += other.vector_insts * k;
        self.elem_ops += other.elem_ops * k;
        for (a, b) in self.vl_histogram.iter_mut().zip(other.vl_histogram.iter()) {
            *a += b * k;
        }
    }

    /// Percentage of operations executed as vector element operations.
    pub fn pct_vectorization(&self) -> f64 {
        let total = (self.scalar_ops + self.elem_ops) as f64;
        if total == 0.0 {
            0.0
        } else {
            100.0 * self.elem_ops as f64 / total
        }
    }

    /// Average vector length over vector instructions with a VL.
    pub fn avg_vl(&self) -> f64 {
        let count: u64 = self.vl_histogram.iter().sum();
        if count == 0 {
            return 0.0;
        }
        let weighted: u64 = self.vl_histogram.iter().enumerate().map(|(vl, n)| vl as u64 * n).sum();
        weighted as f64 / count as f64
    }

    /// The most frequent vector lengths, most common first (up to `k`).
    pub fn common_vls(&self, k: usize) -> Vec<usize> {
        let mut pairs: Vec<(usize, u64)> = self
            .vl_histogram
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(vl, n)| (vl, *n))
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.into_iter().take(k).map(|(vl, _)| vl).collect()
    }
}

/// Per-`region` profile with an anchor for diagnostics.
#[derive(Debug, Clone)]
pub struct RegionProfile {
    /// The `region` marker value (0 = unannotated/serial).
    pub region: u32,
    /// First static instruction executed under this region.
    pub first_sidx: usize,
    /// Operation counts attributed to the region.
    pub profile: Profile,
}

/// Static profile of one vector memory instruction site.
#[derive(Debug, Clone)]
pub struct VMemSite {
    /// Static instruction index.
    pub sidx: usize,
    /// Unit/strided/indexed address pattern.
    pub pattern: VMemPattern,
    /// True for stores.
    pub write: bool,
    /// Dynamic executions of this site.
    pub execs: u64,
    /// Element accesses issued by this site (post-mask).
    pub elems: u64,
    /// Smallest byte stride observed (unit stride records 8; indexed 0).
    pub min_stride: i64,
    /// Largest byte stride observed.
    pub max_stride: i64,
    /// Executions whose element addresses piled onto few L2 banks
    /// (fewer than half the banks while moving at least a bank's worth
    /// of elements).
    pub conflict_execs: u64,
}

/// Static profile of one `setvl` site.
#[derive(Debug, Clone)]
pub struct SetVlSite {
    /// Static instruction index.
    pub sidx: usize,
    /// Dynamic executions.
    pub execs: u64,
    /// Smallest requested length observed (pre-clamp).
    pub min_request: u64,
    /// Largest requested length observed.
    pub max_request: u64,
    /// Whether the clamped result register was ever subsequently read —
    /// a site that discards it cannot re-chunk under a smaller MVL.
    pub result_read: bool,
}

/// The static DLP profile of a program: totals, per-region and per-epoch
/// splits, and per-site memory/`setvl` behavior.
#[derive(Debug, Clone)]
pub struct DlpProfile {
    /// True when every thread's walk completed without trusting an
    /// unknown value: all counts equal what the functional simulator
    /// reports. False profiles are partial lower bounds.
    pub exact: bool,
    /// Human-readable reasons the walk went inexact, if any.
    pub notes: Vec<String>,
    /// Thread count the analysis ran under.
    pub threads: usize,
    /// Whole-program counts (all threads).
    pub total: Profile,
    /// Per-region counts, sorted by region id.
    pub regions: Vec<RegionProfile>,
    /// Per-barrier-epoch counts (index = epoch, capped by
    /// [`DlpOptions::epoch_cap`] with later epochs merged into the last).
    pub epoch_profiles: Vec<Profile>,
    /// Barrier epochs entered (max over threads).
    pub epochs: u64,
    /// Vector memory sites, sorted by static index.
    pub vmem_sites: Vec<VMemSite>,
    /// `setvl` sites, sorted by static index.
    pub setvl_sites: Vec<SetVlSite>,
}

// ---------------------------------------------------------------------------
// The walker
// ---------------------------------------------------------------------------

/// Result of one thread's walk.
#[derive(Debug, Clone, Default)]
struct WalkOut {
    exact: bool,
    note: Option<String>,
    total: Profile,
    regions: BTreeMap<u32, RegionProfile>,
    epoch_profiles: Vec<Profile>,
    epochs: u64,
    vmem_sites: BTreeMap<usize, VMemSite>,
    setvl_sites: BTreeMap<usize, SetVlSite>,
    /// Per-(site, barrier-epoch) address hulls `[lo, hi)` over every
    /// executed access. Epoch-keyed so the race analysis can prune pairs
    /// that only overlap across barrier-separated epochs.
    load_hulls: BTreeMap<(usize, u64), (u64, u64)>,
    store_hulls: BTreeMap<(usize, u64), (u64, u64)>,
}

/// Why a walk stopped before `halt`.
enum Bail {
    /// An untrusted value was about to steer execution. A fully concrete
    /// retry may still succeed (single-thread mode only).
    Poison(String),
    /// Concrete step budget exhausted.
    Budget,
    /// The program faulted, or provably never terminates.
    Fatal(String),
}

/// One accelerable self-loop block.
#[derive(Debug, Clone, Copy)]
struct AccelBlock {
    head: usize,
    branch: usize, // last sidx; conditional branch whose taken target is `head`
}

/// What kind of memory record a trial run captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteKind {
    Load,
    /// Scalar integer store: `value` is the full pre-truncation register
    /// value, extrapolable when the address is loop-invariant.
    IntStore {
        value: u64,
    },
    /// FP or vector store: values are not extrapolable.
    OtherStore,
}

#[derive(Debug, Clone, Copy)]
struct SiteRec {
    sidx: usize,
    lo: u64,
    hi: u64, // exclusive
    elems: u64,
    conflict: bool,
    kind: SiteKind,
}

/// Trial state for one candidate loop block: two fully recorded runs.
struct Trial {
    block: AccelBlock,
    runs: usize,
    /// Head-state snapshots: entry of run 0, entry of run 1.
    x: [[u64; 32]; 2],
    prof: [Profile; 2],
    /// Input values of non-affine integer-writing instructions, in
    /// execution order (must repeat exactly between runs).
    nl_vals: [Vec<u64>; 2],
    sites: [Vec<SiteRec>; 2],
    /// Loop-branch operand values (rs1, rs2) per run.
    branch_vals: [[u64; 2]; 2],
}

struct Walker<'a> {
    prog: &'a DecodedProgram,
    opts: &'a DlpOptions,
    cross: Option<&'a RangeSet>,
    st: ArchState,
    mem: Memory,
    arena: AddrArena,
    /// Knownness shadow: bit r set = register holds its true value.
    xk: u32,
    fk: u32,
    vk: u32,
    vm_known: bool,
    /// Bytes whose contents the walk no longer tracks.
    unknown: RangeSet,
    steps: u64,
    epoch: usize,
    out: WalkOut,
    /// `setvl` result provenance: which site last wrote each x register.
    setvl_origin: [Option<usize>; 32],
    accel_blocks: BTreeMap<usize, AccelBlock>,
    trial: Option<Trial>,
    accelerate: bool,
}

/// Identify self-looping straight-line blocks whose dynamics the trial
/// machinery can verify: no instruction may change `vl`/`vm`/the system
/// state, pull loop-varying data from memory into the integer file, or
/// move lane data into it (those paths defeat the two-run linearity
/// argument — see the module docs).
fn accel_candidates(prog: &DecodedProgram) -> BTreeMap<usize, AccelBlock> {
    let insts: Vec<_> = prog.insts.iter().map(|si| si.inst).collect();
    let cfg = Cfg::build(insts);
    let mut out = BTreeMap::new();
    'blocks: for (bid, b) in cfg.blocks.iter().enumerate() {
        let Term::Branch { taken, .. } = b.term else { continue };
        if taken != bid || b.end == b.start {
            continue;
        }
        for si in &prog.insts[b.start..b.end] {
            let op = si.inst.op;
            let bad = matches!(si.class, OpClass::Sys | OpClass::Jump)
                || matches!(op, Op::Ld | Op::Lw | Op::Lwu | Op::Lb | Op::Lbu)
                || op.scalar_result_from_lanes()
                || si.defs.iter().any(|d| matches!(d, RegRef::Vm | RegRef::Vl));
            if bad {
                continue 'blocks;
            }
            // An indexed vector access whose index register is rewritten
            // inside the block has non-rigid per-element addresses.
            if matches!(op, Op::Vldx | Op::Vstx)
                && prog.insts[b.start..b.end]
                    .iter()
                    .any(|o| o.defs.contains(&RegRef::V(si.inst.rs2)))
            {
                continue 'blocks;
            }
        }
        out.insert(b.start, AccelBlock { head: b.start, branch: b.end - 1 });
    }
    out
}

/// Is `op` one of the vector-compare opcodes (partial mask writers)?
fn is_vcmp(op: Op) -> bool {
    matches!(op, Op::Vseq | Op::Vsne | Op::Vslt | Op::Vsge | Op::Vfeq | Op::Vflt | Op::Vfle)
}

impl<'a> Walker<'a> {
    fn new(
        prog: &'a DecodedProgram,
        opts: &'a DlpOptions,
        tid: usize,
        cross: Option<&'a RangeSet>,
        accel_blocks: BTreeMap<usize, AccelBlock>,
    ) -> Self {
        let st = ArchState::new(prog.program.entry, tid, opts.threads);
        let mem = Memory::load(&prog.program);
        let arena = AddrArena::new(opts.threads.max(tid + 1));
        Walker {
            prog,
            opts,
            cross,
            st,
            mem,
            arena,
            xk: u32::MAX,
            fk: u32::MAX,
            vk: u32::MAX,
            vm_known: true,
            unknown: RangeSet::default(),
            steps: 0,
            epoch: 0,
            out: WalkOut {
                exact: false,
                epoch_profiles: vec![Profile::default()],
                ..WalkOut::default()
            },
            setvl_origin: [None; 32],
            accel_blocks,
            trial: None,
            accelerate: opts.accelerate,
        }
    }

    #[inline]
    fn known_x(&self, r: u8) -> bool {
        r == 0 || self.xk & (1 << r) != 0
    }

    #[inline]
    fn set_known_x(&mut self, r: u8, k: bool) {
        if r != 0 {
            if k {
                self.xk |= 1 << r;
            } else {
                self.xk &= !(1 << r);
            }
        }
    }

    fn tainted(&self, lo: u64, hi: u64) -> bool {
        self.unknown.intersects(lo, hi) || self.cross.is_some_and(|c| c.intersects(lo, hi))
    }

    /// Would executing `si` let an untrusted value steer the walk?
    fn unknown_critical(&self, si: &StaticInst) -> Option<String> {
        let inst = &si.inst;
        let bad_x = |r: u8| !self.known_x(r);
        let reason = match si.class {
            OpClass::Branch if bad_x(inst.rs1) || bad_x(inst.rs2) => "branch condition",
            OpClass::Jump if matches!(inst.op, Op::Jr | Op::Jalr) && bad_x(inst.rs1) => {
                "indirect jump target"
            }
            OpClass::Load | OpClass::Store if bad_x(inst.rs1) => "scalar access address",
            OpClass::VLoad | OpClass::VStore => {
                if bad_x(inst.rs1) {
                    "vector access base"
                } else if matches!(inst.op, Op::Vlds | Op::Vsts) && bad_x(inst.rs2) {
                    "vector access stride"
                } else if matches!(inst.op, Op::Vldx | Op::Vstx) && self.vk & (1 << inst.rs2) == 0 {
                    "vector access index"
                } else if inst.masked && !self.vm_known {
                    "vector access mask"
                } else {
                    return None;
                }
            }
            _ if inst.op == Op::SetVl && bad_x(inst.rs1) => "setvl request",
            _ if inst.op == Op::VltCfg && bad_x(inst.rs1) => "vltcfg operand",
            _ => return None,
        };
        Some(format!("{reason} depends on a value the walk no longer tracks (sidx {})", {
            self.prog.index_of(self.st.pc).unwrap_or(0)
        }))
    }

    /// Run the walk to completion or bail.
    fn run(&mut self) -> Result<(), Bail> {
        loop {
            if self.st.halted {
                return Ok(());
            }
            let Some(sidx) = self.prog.index_of(self.st.pc) else {
                return Err(Bail::Fatal(format!(
                    "walk left the text segment at pc {:#x}",
                    self.st.pc
                )));
            };
            let si = self.prog.get(sidx);

            if let Some(reason) = self.unknown_critical(si) {
                return Err(Bail::Poison(reason));
            }
            if self.steps >= self.opts.budget {
                return Err(Bail::Budget);
            }

            // Trial bookkeeping: start a trial at a candidate head, abandon
            // one whose control left the block.
            if self.accelerate {
                if let Some(t) = &self.trial {
                    if sidx < t.block.head || sidx > t.block.branch {
                        self.trial = None;
                    }
                }
                if self.trial.is_none() {
                    if let Some(&block) = self.accel_blocks.get(&sidx) {
                        self.trial = Some(Trial {
                            block,
                            runs: 0,
                            x: [self.st.x, [0; 32]],
                            prof: [Profile::default(), Profile::default()],
                            nl_vals: [Vec::new(), Vec::new()],
                            sites: [Vec::new(), Vec::new()],
                            branch_vals: [[0; 2]; 2],
                        });
                    }
                }
            }

            // Pre-capture trial inputs (the step may overwrite its own
            // sources) and the stored value / stride for site records.
            let mut nl_capture: Option<Vec<u64>> = None;
            let mut store_value = 0u64;
            if let Some(t) = &self.trial {
                if t.runs < 2 {
                    let inst = &si.inst;
                    let writes_x = si.defs.iter().any(|d| matches!(d, RegRef::I(_)));
                    if writes_x && !matches!(inst.op, Op::Add | Op::Sub | Op::Addi) {
                        let vals: Vec<u64> = si
                            .uses
                            .iter()
                            .filter_map(|u| match u {
                                RegRef::I(r) => Some(self.st.get_x(*r)),
                                _ => None,
                            })
                            .collect();
                        nl_capture = Some(vals);
                    }
                    // Strided vector accesses must also hold their stride
                    // constant for hull extrapolation to be rigid.
                    if matches!(inst.op, Op::Vlds | Op::Vsts) {
                        nl_capture.get_or_insert_with(Vec::new).push(self.st.get_x(inst.rs2));
                    }
                    if matches!(inst.op, Op::Sd | Op::Sw | Op::Sb) {
                        store_value = self.st.get_x(inst.rd);
                    }
                    if sidx == t.block.branch {
                        let vals = [self.st.get_x(inst.rs1), self.st.get_x(inst.rs2)];
                        if let Some(t) = &mut self.trial {
                            t.branch_vals[t.runs] = vals;
                        }
                    }
                }
            }

            let d = match interp::step(&mut self.st, &mut self.mem, self.prog, &mut self.arena) {
                Ok(d) => d,
                Err(e) => return Err(Bail::Fatal(format!("fault: {e}"))),
            };
            self.steps += 1;
            self.absorb(si, &d, nl_capture, store_value)?;
        }
    }

    /// Record one concretely executed instruction: statistics, knownness
    /// propagation, site bookkeeping, and trial progress.
    fn absorb(
        &mut self,
        si: &StaticInst,
        d: &DynInst,
        nl_capture: Option<Vec<u64>>,
        store_value: u64,
    ) -> Result<(), Bail> {
        let sidx = d.sidx as usize;
        let inst = &si.inst;

        // ---- statistics ----
        self.out.total.record(si.class, d);
        let region = self.st.region;
        let entry = self.out.regions.entry(region).or_insert_with(|| RegionProfile {
            region,
            first_sidx: sidx,
            profile: Profile::default(),
        });
        entry.profile.record(si.class, d);
        let ei = self.epoch.min(self.opts.epoch_cap - 1).min(self.out.epoch_profiles.len() - 1);
        self.out.epoch_profiles[ei].record(si.class, d);
        if matches!(d.kind, DynKind::Barrier) {
            self.epoch += 1;
            self.out.epochs = self.out.epochs.max(self.epoch as u64);
            if self.epoch < self.opts.epoch_cap && self.epoch >= self.out.epoch_profiles.len() {
                self.out.epoch_profiles.push(Profile::default());
            }
        }

        // ---- setvl provenance & site stats ----
        for u in &si.uses {
            if let RegRef::I(r) = u {
                if let Some(site) = self.setvl_origin[*r as usize] {
                    if let Some(s) = self.out.setvl_sites.get_mut(&site) {
                        s.result_read = true;
                    }
                }
            }
        }
        for def in &si.defs {
            if let RegRef::I(r) = def {
                self.setvl_origin[*r as usize] = None;
            }
        }
        if inst.op == Op::SetVl {
            // Request value: reconstruct the pre-clamp request from rs1.
            // rs1 may equal rd (overwritten), so use the captured value if
            // a trial recorded it; otherwise the clamped result bounds it.
            let req = if inst.rs1 == inst.rd {
                self.st.vl as u64 // clamped: best available lower bound
            } else {
                self.st.get_x(inst.rs1)
            };
            let s = self.out.setvl_sites.entry(sidx).or_insert_with(|| SetVlSite {
                sidx,
                execs: 0,
                min_request: u64::MAX,
                max_request: 0,
                result_read: false,
            });
            s.execs += 1;
            s.min_request = s.min_request.min(req);
            s.max_request = s.max_request.max(req);
            if inst.rd != 0 {
                self.setvl_origin[inst.rd as usize] = Some(sidx);
            }
        }

        // ---- knownness propagation ----
        let inputs_known = si.uses.iter().all(|u| match u {
            RegRef::I(r) => self.known_x(*r),
            RegRef::F(r) => self.fk & (1 << r) != 0,
            RegRef::V(r) => self.vk & (1 << r) != 0,
            RegRef::Vm => self.vm_known,
            RegRef::Vl => true,
        });
        let mut site_rec: Option<SiteRec> = None;
        let mut loaded_tainted = false;
        match d.kind {
            DynKind::Mem { addr, size } => {
                let (lo, hi) = (addr, addr.wrapping_add(size as u64));
                let ek = self.epoch as u64;
                if si.class == OpClass::Load {
                    loaded_tainted = self.tainted(lo, hi);
                    hull(&mut self.out.load_hulls, (sidx, ek), lo, hi);
                    site_rec = Some(SiteRec {
                        sidx,
                        lo,
                        hi,
                        elems: 0,
                        conflict: false,
                        kind: SiteKind::Load,
                    });
                } else {
                    if inputs_known {
                        self.unknown.remove(lo, hi);
                    } else {
                        self.unknown.insert(lo, hi);
                    }
                    hull(&mut self.out.store_hulls, (sidx, ek), lo, hi);
                    let kind = if matches!(inst.op, Op::Sd | Op::Sw | Op::Sb) {
                        SiteKind::IntStore { value: store_value }
                    } else {
                        SiteKind::OtherStore
                    };
                    site_rec = Some(SiteRec { sidx, lo, hi, elems: 0, conflict: false, kind });
                }
            }
            DynKind::VMem { addrs } => {
                let slice = self.arena.slice(addrs);
                let elems = slice.len() as u64;
                let (mut lo, mut hi) = (u64::MAX, 0u64);
                let mut banks_hit = 0u64;
                for &a in slice {
                    lo = lo.min(a);
                    hi = hi.max(a.wrapping_add(8));
                    banks_hit |= 1 << ((a >> 3) as usize % self.opts.banks.clamp(1, 64));
                }
                let write = si.class == OpClass::VStore;
                let conflict = {
                    let distinct = banks_hit.count_ones() as u64;
                    elems >= self.opts.banks as u64 && distinct * 2 <= self.opts.banks as u64
                };
                if elems > 0 {
                    let ek = self.epoch as u64;
                    if write {
                        // Per-element strong/weak update.
                        let known = inputs_known;
                        let addrs_owned: Vec<u64> = slice.to_vec();
                        for a in addrs_owned {
                            if known {
                                self.unknown.remove(a, a.wrapping_add(8));
                            } else {
                                self.unknown.insert(a, a.wrapping_add(8));
                            }
                        }
                        hull(&mut self.out.store_hulls, (sidx, ek), lo, hi);
                    } else {
                        let slice = self.arena.slice(addrs);
                        loaded_tainted = slice.iter().any(|&a| self.tainted(a, a.wrapping_add(8)));
                        hull(&mut self.out.load_hulls, (sidx, ek), lo, hi);
                    }
                    site_rec = Some(SiteRec {
                        sidx,
                        lo,
                        hi,
                        elems,
                        conflict,
                        kind: if write { SiteKind::OtherStore } else { SiteKind::Load },
                    });
                }
                // Stride bookkeeping (Table 4's stride column).
                let stride = match inst.op.vmem_pattern() {
                    Some(VMemPattern::Unit) => 8,
                    Some(VMemPattern::Strided) => self.st.get_x(inst.rs2) as i64,
                    _ => 0,
                };
                let v = self.out.vmem_sites.entry(sidx).or_insert_with(|| VMemSite {
                    sidx,
                    pattern: inst.op.vmem_pattern().unwrap_or(VMemPattern::Unit),
                    write,
                    execs: 0,
                    elems: 0,
                    min_stride: i64::MAX,
                    max_stride: i64::MIN,
                    conflict_execs: 0,
                });
                v.execs += 1;
                v.elems += elems;
                v.min_stride = v.min_stride.min(stride);
                v.max_stride = v.max_stride.max(stride);
                v.conflict_execs += conflict as u64;
            }
            _ => {}
        }

        let ok = inputs_known && !loaded_tainted;
        for def in &si.defs {
            match def {
                RegRef::I(r) => self.set_known_x(*r, ok),
                RegRef::F(r) => {
                    if ok {
                        self.fk |= 1 << r;
                    } else {
                        self.fk &= !(1 << r);
                    }
                }
                RegRef::V(r) => {
                    let partial = inst.masked || (d.vl as usize) < MAX_VL;
                    let known = ok && (!partial || self.vk & (1 << r) != 0);
                    if known {
                        self.vk |= 1 << r;
                    } else {
                        self.vk &= !(1 << r);
                    }
                }
                RegRef::Vm => {
                    let partial = is_vcmp(inst.op) && (d.vl as usize) < MAX_VL;
                    self.vm_known = ok && (!partial || self.vm_known);
                }
                RegRef::Vl => {}
            }
        }

        // ---- trial progress ----
        if let Some(t) = &mut self.trial {
            if t.runs < 2 {
                let r = t.runs;
                t.prof[r].record(si.class, d);
                if let Some(vals) = nl_capture {
                    t.nl_vals[r].extend(vals);
                }
                if let Some(rec) = site_rec {
                    t.sites[r].push(rec);
                }
                if sidx == t.block.branch {
                    let completed = matches!(d.kind, DynKind::Branch { taken: true, .. });
                    if completed {
                        t.runs += 1;
                        if t.runs == 1 {
                            t.x[1] = self.st.x;
                        } else {
                            return self.try_commit();
                        }
                    } else {
                        self.trial = None; // loop exited during trials
                    }
                }
            }
        }
        Ok(())
    }

    /// Two trial runs are complete: verify the block's integer dynamics
    /// are a stable linear recurrence, solve the loop branch for the
    /// remaining trip count, and commit it in O(1). On any verification
    /// failure the trial is simply dropped — execution continues
    /// concretely, which is always sound.
    fn try_commit(&mut self) -> Result<(), Bail> {
        let t = self.trial.take().expect("trial present");
        let head_x = self.st.x; // state after run 2, at block head

        // Per-register deltas must repeat: a fixed vector of the block's
        // affine update, hence the delta for every future iteration.
        let mut delta = [0u64; 32];
        for r in 0..32 {
            let d1 = t.x[1][r].wrapping_sub(t.x[0][r]);
            let d2 = head_x[r].wrapping_sub(t.x[1][r]);
            if d1 != d2 {
                return Ok(());
            }
            delta[r] = d1;
        }
        // Non-affine integer results must have had identical inputs, and
        // both runs must have followed the identical path.
        if t.nl_vals[0] != t.nl_vals[1] || t.prof[0] != t.prof[1] {
            return Ok(());
        }
        if t.sites[0].len() != t.sites[1].len() {
            return Ok(());
        }
        // Memory sites must translate rigidly between runs.
        let mut site_deltas: Vec<i64> = Vec::with_capacity(t.sites[1].len());
        for (a, b) in t.sites[0].iter().zip(t.sites[1].iter()) {
            if a.sidx != b.sidx || a.elems != b.elems {
                return Ok(());
            }
            let dlo = b.lo.wrapping_sub(a.lo) as i64;
            let dhi = b.hi.wrapping_sub(a.hi) as i64;
            if dlo != dhi {
                return Ok(());
            }
            site_deltas.push(dlo);
        }

        // Solve the loop branch: how many further iterations stay taken?
        let br = &self.prog.get(t.block.branch).inst;
        let (a0, b0) = (t.branch_vals[1][0], t.branch_vals[1][1]);
        let (da, db) = (
            t.branch_vals[1][0].wrapping_sub(t.branch_vals[0][0]) as i64,
            t.branch_vals[1][1].wrapping_sub(t.branch_vals[0][1]) as i64,
        );
        let signed = matches!(br.op, Op::Blt | Op::Bge);
        let (av, bv): (i128, i128) =
            if signed { (a0 as i64 as i128, b0 as i64 as i128) } else { (a0 as i128, b0 as i128) };
        let (lo_w, hi_w): (i128, i128) =
            if signed { (i64::MIN as i128, i64::MAX as i128) } else { (0, u64::MAX as i128) };
        // Window in which the closed-form trajectory matches wrapping
        // machine arithmetic, per operand.
        let window = |v: i128, d: i128| -> Option<i128> {
            if d == 0 {
                None // unconstrained
            } else if d > 0 {
                Some((hi_w - v) / d)
            } else {
                Some((v - lo_w) / -d)
            }
        };
        let mut cap: Option<i128> = Some(K_CAP);
        let mut tighten = |w: Option<i128>| {
            if let Some(w) = w {
                cap = Some(cap.map_or(w, |c| c.min(w)));
            }
        };
        tighten(window(av, da as i128));
        tighten(window(bv, db as i128));
        // Extrapolated site endpoints must stay inside [0, 2^63).
        for (rec, &d) in t.sites[1].iter().zip(site_deltas.iter()) {
            if rec.lo as i128 >= 1 << 62 || rec.hi as i128 >= 1 << 62 {
                return Ok(());
            }
            tighten(window(rec.lo as i128, d as i128));
            tighten(window(rec.hi as i128, d as i128));
        }

        // g(j) = g0 + j*dg is the branch-operand difference after j more
        // iterations; the taken predicate in terms of g decides the count.
        let g0 = av - bv;
        let dg = (da as i128) - (db as i128);
        let n_cond: Option<i128> = match br.op {
            Op::Blt | Op::Bltu => {
                if dg <= 0 {
                    if g0 + dg < 0 {
                        None
                    } else {
                        Some(0)
                    }
                } else {
                    Some(((-1 - g0).div_euclid(dg)).max(0))
                }
            }
            Op::Bge | Op::Bgeu => {
                if dg >= 0 {
                    if g0 + dg >= 0 {
                        None
                    } else {
                        Some(0)
                    }
                } else {
                    Some((g0.div_euclid(-dg)).max(0))
                }
            }
            Op::Beq => {
                if dg == 0 {
                    if g0 == 0 {
                        None
                    } else {
                        Some(0)
                    }
                } else if g0 + dg == 0 {
                    Some(1)
                } else {
                    Some(0)
                }
            }
            Op::Bne => {
                if dg == 0 {
                    if g0 != 0 {
                        None
                    } else {
                        Some(0)
                    }
                } else {
                    let num = -g0;
                    if num % dg == 0 && num / dg >= 1 {
                        Some(num / dg - 1)
                    } else {
                        None
                    }
                }
            }
            _ => Some(0),
        };

        let k = match (n_cond, cap) {
            (None, None) => {
                // Nothing ever changes and the branch stays taken: the
                // program provably never terminates.
                return Err(Bail::Fatal(format!("non-terminating loop at sidx {}", t.block.head)));
            }
            (None, Some(c)) => c,
            (Some(n), None) => n,
            (Some(n), Some(c)) => n.min(c),
        };
        if k <= 0 {
            return Ok(());
        }
        let k = k as u64;

        // ---- commit ----
        let region = self.st.region;
        self.out.total.add_scaled(&t.prof[1], k);
        if let Some(e) = self.out.regions.get_mut(&region) {
            e.profile.add_scaled(&t.prof[1], k);
        }
        let ei = self.epoch.min(self.opts.epoch_cap - 1).min(self.out.epoch_profiles.len() - 1);
        self.out.epoch_profiles[ei].add_scaled(&t.prof[1], k);

        // Per-site extrapolation. Gather moving-store spans first so a
        // rigid store under one is conservatively poisoned, not replayed.
        let mut spans: Vec<(usize, u64, u64, i64)> = Vec::with_capacity(t.sites[1].len());
        for (rec, &d) in t.sites[1].iter().zip(site_deltas.iter()) {
            let (lo, hi) = (rec.lo as i128, rec.hi as i128);
            let (slo, shi) = if d >= 0 {
                (lo + d as i128, hi + (k as i128) * d as i128)
            } else {
                (lo + (k as i128) * d as i128, hi + d as i128)
            };
            debug_assert!(slo >= 0 && shi < 1 << 63);
            spans.push((rec.sidx, slo as u64, shi as u64, d));
        }
        let moving_stores: Vec<(u64, u64)> = t.sites[1]
            .iter()
            .zip(spans.iter())
            .filter(|(rec, (_, _, _, d))| !matches!(rec.kind, SiteKind::Load) && *d != 0)
            .map(|(_, &(_, lo, hi, _))| (lo, hi))
            .collect();
        let ek = self.epoch as u64; // accel blocks contain no barriers
        for (i, rec) in t.sites[1].iter().enumerate() {
            let (_, slo, shi, d) = spans[i];
            match rec.kind {
                SiteKind::Load => {
                    hull(&mut self.out.load_hulls, (rec.sidx, ek), slo, shi);
                }
                SiteKind::IntStore { value } => {
                    hull(&mut self.out.store_hulls, (rec.sidx, ek), slo, shi);
                    let covered = moving_stores.iter().any(|&(l, h)| l < rec.hi && rec.lo < h);
                    if d == 0 && !covered {
                        // Loop-invariant address: the stored integer is on
                        // the verified linear trajectory, so the final
                        // value is exact and the slot stays trusted.
                        let dv = value.wrapping_sub(match t.sites[0][i].kind {
                            SiteKind::IntStore { value: v0 } => v0,
                            _ => return Ok(()),
                        });
                        let fin = value.wrapping_add(dv.wrapping_mul(k));
                        match rec.hi - rec.lo {
                            8 => self.mem.write_u64(rec.lo, fin),
                            4 => self.mem.write_u32(rec.lo, fin as u32),
                            _ => self.mem.write_u8(rec.lo, fin as u8),
                        }
                        self.unknown.remove(rec.lo, rec.hi);
                    } else {
                        self.unknown.insert(slo, shi);
                    }
                }
                SiteKind::OtherStore => {
                    hull(&mut self.out.store_hulls, (rec.sidx, ek), slo, shi);
                    self.unknown.insert(slo, shi);
                }
            }
            // Vector site dynamic counters scale with k.
            if let Some(v) = self.out.vmem_sites.get_mut(&rec.sidx) {
                if rec.elems > 0
                    || matches!(self.prog.get(rec.sidx).class, OpClass::VLoad | OpClass::VStore)
                {
                    v.execs += k;
                    v.elems += rec.elems * k;
                    v.conflict_execs += rec.conflict as u64 * k;
                }
            }
        }

        // Integer state jumps k iterations ahead; FP/vector/mask state in
        // the block is summarized as untrusted.
        for (r, d) in delta.iter().enumerate().skip(1) {
            self.st.x[r] = self.st.x[r].wrapping_add(d.wrapping_mul(k));
        }
        for si in &self.prog.insts[t.block.head..=t.block.branch] {
            for def in &si.defs {
                match def {
                    RegRef::F(r) => self.fk &= !(1 << r),
                    RegRef::V(r) => self.vk &= !(1 << r),
                    _ => {}
                }
            }
        }
        Ok(())
    }

    fn finish(mut self, end: Result<(), Bail>) -> WalkOut {
        match end {
            Ok(()) => {
                self.out.exact = true;
            }
            Err(Bail::Poison(why)) => {
                self.out.note = Some(why);
            }
            Err(Bail::Budget) => {
                self.out.note =
                    Some(format!("budget of {} concrete steps exhausted", self.opts.budget));
            }
            Err(Bail::Fatal(why)) => {
                self.out.note = Some(why);
            }
        }
        self.out
    }
}

fn hull<K: Ord>(m: &mut BTreeMap<K, (u64, u64)>, key: K, lo: u64, hi: u64) {
    m.entry(key)
        .and_modify(|(l, h)| {
            *l = (*l).min(lo);
            *h = (*h).max(hi);
        })
        .or_insert((lo, hi));
}

/// Walk one thread. `poison_retry` controls the accel-off fallback.
fn walk_thread(
    prog: &DecodedProgram,
    opts: &DlpOptions,
    tid: usize,
    cross: Option<&RangeSet>,
    candidates: &BTreeMap<usize, AccelBlock>,
) -> WalkOut {
    let mut w = Walker::new(prog, opts, tid, cross, candidates.clone());
    let end = w.run();
    let retry = matches!(end, Err(Bail::Poison(_))) && opts.accelerate;
    let out = w.finish(end);
    if !out.exact && retry {
        // The poison came from acceleration's summarization (the only
        // source of unknowns in this configuration besides cross ranges,
        // which don't go away on retry). A fully concrete walk is exact if
        // it fits the budget.
        let mut w2 = Walker::new(prog, opts, tid, cross, BTreeMap::new());
        w2.accelerate = false;
        let end2 = w2.run();
        let out2 = w2.finish(end2);
        if out2.exact || out2.total.insts > out.total.insts {
            return out2;
        }
    }
    out
}

/// Internal: walk all threads with the two-pass cross-validation.
fn analyze_threads(prog: &DecodedProgram, opts: &DlpOptions) -> (Vec<WalkOut>, bool) {
    let candidates = if opts.accelerate { accel_candidates(prog) } else { BTreeMap::new() };
    let nthr = opts.threads.max(1);
    let pass1: Vec<WalkOut> =
        (0..nthr).map(|t| walk_thread(prog, opts, t, None, &candidates)).collect();
    if nthr == 1 {
        let exact = pass1[0].exact;
        return (pass1, exact);
    }
    if !pass1.iter().all(|o| o.exact) {
        return (pass1, false);
    }
    // Pass 2: re-walk each thread treating every byte any *other* thread
    // writes as untrusted. All-exact means no cross-thread value steered
    // anything, so the pass-1 addresses (== pass-2 addresses) are
    // schedule-independent.
    let store_sets: Vec<RangeSet> = pass1
        .iter()
        .map(|o| {
            let mut s = RangeSet::default();
            for &(lo, hi) in o.store_hulls.values() {
                s.insert(lo, hi);
            }
            s
        })
        .collect();
    let mut pass2 = Vec::with_capacity(nthr);
    for t in 0..nthr {
        let mut cross = RangeSet::default();
        for (u, s) in store_sets.iter().enumerate() {
            if u != t {
                for (&lo, &hi) in s.m.iter() {
                    cross.insert(lo, hi);
                }
            }
        }
        pass2.push(walk_thread(prog, opts, t, Some(&cross), &candidates));
    }
    let exact = pass2.iter().all(|o| o.exact);
    (pass2, exact)
}

/// Statically predict the program's DLP profile (Table-4 quantities) by
/// walking each thread with the knownness shadow and loop acceleration
/// described in the module docs.
pub fn analyze(prog: &Program, opts: &DlpOptions) -> DlpProfile {
    let dec = DecodedProgram::new(prog);
    let (outs, exact) = analyze_threads(&dec, opts);

    let mut total = Profile::default();
    let mut regions: BTreeMap<u32, RegionProfile> = BTreeMap::new();
    let mut epoch_profiles: Vec<Profile> = Vec::new();
    let mut vmem_sites: BTreeMap<usize, VMemSite> = BTreeMap::new();
    let mut setvl_sites: BTreeMap<usize, SetVlSite> = BTreeMap::new();
    let mut epochs = 0u64;
    let mut notes = Vec::new();
    for (tid, o) in outs.iter().enumerate() {
        total.add_scaled(&o.total, 1);
        for (rid, rp) in &o.regions {
            regions
                .entry(*rid)
                .and_modify(|e| {
                    e.first_sidx = e.first_sidx.min(rp.first_sidx);
                    e.profile.add_scaled(&rp.profile, 1);
                })
                .or_insert_with(|| rp.clone());
        }
        for (i, p) in o.epoch_profiles.iter().enumerate() {
            if epoch_profiles.len() <= i {
                epoch_profiles.push(Profile::default());
            }
            epoch_profiles[i].add_scaled(p, 1);
        }
        epochs = epochs.max(o.epochs + 1);
        for (s, v) in &o.vmem_sites {
            vmem_sites
                .entry(*s)
                .and_modify(|e| {
                    e.execs += v.execs;
                    e.elems += v.elems;
                    e.min_stride = e.min_stride.min(v.min_stride);
                    e.max_stride = e.max_stride.max(v.max_stride);
                    e.conflict_execs += v.conflict_execs;
                })
                .or_insert_with(|| v.clone());
        }
        for (s, v) in &o.setvl_sites {
            setvl_sites
                .entry(*s)
                .and_modify(|e| {
                    e.execs += v.execs;
                    e.min_request = e.min_request.min(v.min_request);
                    e.max_request = e.max_request.max(v.max_request);
                    e.result_read |= v.result_read;
                })
                .or_insert_with(|| v.clone());
        }
        if let Some(n) = &o.note {
            notes.push(format!("thread {tid}: {n}"));
        }
    }

    DlpProfile {
        exact,
        notes,
        threads: opts.threads.max(1),
        total,
        regions: regions.into_values().collect(),
        epoch_profiles,
        epochs,
        vmem_sites: vmem_sites.into_values().collect(),
        setvl_sites: setvl_sites.into_values().collect(),
    }
}

/// One thread's access-set bounds: static instruction index → barrier
/// epoch → sorted disjoint `[lo, hi)` byte ranges covering every access
/// the site made in that epoch. The symbolic walker produces one-element
/// lists (hulls); the observed walk keeps the exact coalesced sets, which
/// is what lets the race analysis discharge permutation scatters whose
/// hulls overlap but whose elements interleave disjointly.
pub type SiteBounds = BTreeMap<usize, BTreeMap<u64, Vec<(u64, u64)>>>;

/// Per-thread access-set bounds for every (site, barrier-epoch) pair,
/// over loads and stores — `Some` only when either the symbolic walk of
/// every thread validated as exact and schedule-independent, or (failing
/// that) the epoch-synchronous observed walk (`content::observe`)
/// completed conflict-free, which certifies its per-epoch sets for every
/// interleaving. A site absent from a thread's map was never executed by
/// that thread — in any schedule, by the same argument.
pub fn site_bounds(prog: &Program, threads: usize) -> Option<Vec<SiteBounds>> {
    let opts = DlpOptions { threads, budget: 20_000_000, ..DlpOptions::default() };
    let dec = DecodedProgram::new(prog);
    let (outs, exact) = analyze_threads(&dec, &opts);
    if !exact {
        // Symbolic walk couldn't certify (data-dependent steering, shared
        // epochs the two-pass scheme rejected, …): fall back to concretely
        // observing the canonical schedule. Conflict-free ⇒ the sets are
        // schedule-independent, so they are just as valid as walker hulls.
        return crate::content::observe(prog, threads, opts.budget);
    }
    Some(
        outs.into_iter()
            .map(|o| {
                let mut m: BTreeMap<usize, BTreeMap<u64, (u64, u64)>> = BTreeMap::new();
                for ((s, e), (lo, hi)) in o.load_hulls.into_iter().chain(o.store_hulls) {
                    hull(m.entry(s).or_default(), e, lo, hi);
                }
                m.into_iter()
                    .map(|(s, per)| (s, per.into_iter().map(|(e, h)| (e, vec![h])).collect()))
                    .collect()
            })
            .collect(),
    )
}

// ---------------------------------------------------------------------------
// Partition advisor
// ---------------------------------------------------------------------------

/// How a phase could exploit a VLT lane partition (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VltOpportunity {
    /// Region 0: unannotated/serial code — runs on one thread.
    Serial,
    /// A parallel region with no vector element work: scalar
    /// threads-on-lanes applies.
    ScalarParallel,
    /// Vector code at short average VL (at most half the machine MVL):
    /// partitioned lanes recover the idle elements.
    ShortVector,
    /// Long-vector code that already fills the lanes.
    LongVector,
}

/// One scored VLTCFG partition.
#[derive(Debug, Clone, Copy)]
pub struct PartitionScore {
    /// VLT threads.
    pub threads: usize,
    /// Lane clusters (0 = flat single-cluster machine).
    pub clusters: usize,
    /// Per-thread MVL under this partition.
    pub mvl: usize,
    /// Predicted relative cycles (cost-model units; lower is better).
    pub est_cycles: f64,
    /// Speedup over the 1-thread flat partition.
    pub speedup: f64,
}

/// Advice for one region.
#[derive(Debug, Clone)]
pub struct RegionAdvice {
    /// The region id.
    pub region: u32,
    /// Opportunity classification.
    pub opportunity: VltOpportunity,
    /// Region vectorization percentage.
    pub pct_vectorization: f64,
    /// Region average VL.
    pub avg_vl: f64,
    /// Most common VL, if any vector instruction ran.
    pub top_vl: Option<usize>,
    /// Best flat thread count for this region alone.
    pub best_threads: usize,
}

/// The advisor's output: per-region classification plus ranked partitions.
#[derive(Debug, Clone)]
pub struct Advice {
    /// Per-region advice, sorted by region id.
    pub regions: Vec<RegionAdvice>,
    /// Flat partitions, ranked best first.
    pub ranking: Vec<PartitionScore>,
    /// Hierarchical (8 threads × c clusters) partitions, informational —
    /// they describe a larger machine and are priced separately.
    pub hierarchical: Vec<PartitionScore>,
    /// The recommended flat partition.
    pub best: PartitionScore,
    /// Largest flat thread count the program *as written* tolerates: a
    /// fixed `setvl` request whose clamped result is discarded cannot
    /// re-chunk under a smaller per-thread MVL. [`Advice::best`] may
    /// exceed this — it assumes the phase is re-chunked for the partition
    /// (the `dlp-setvl-clamp` diagnostic marks the site to fix).
    pub max_threads: usize,
    /// Percentage of predicted 1-thread time spent in parallel regions —
    /// the headroom VLT can attack (cf. `Workload::opportunity`).
    pub opportunity_pct: f64,
}

/// Relative per-instruction issue overhead of a vector instruction
/// (dead time the paper's short-vector analysis highlights).
const DEAD: f64 = 4.0;
/// Serialized overhead per extra chunk a long vector needs under a
/// reduced-MVL partition (extra strip-mine iterations).
const CHUNK: f64 = 2.0;
/// Lanes of the baseline flat machine.
const LANES: usize = 8;

/// Cost of running `q` on one thread with `lanes` lanes and MVL `mvl`.
fn cost_one(q: &Profile, lanes: usize, mvl: usize) -> (f64, f64) {
    let mut vec_cost = 0.0;
    let mut chunk_penalty = 0.0;
    for (vl, &n) in q.vl_histogram.iter().enumerate() {
        if n == 0 || vl == 0 {
            continue;
        }
        let chunks = vl.div_ceil(mvl);
        let mut passes = 0usize;
        let mut left = vl;
        while left > 0 {
            let c = left.min(mvl);
            passes += c.div_ceil(lanes);
            left -= c;
        }
        vec_cost += n as f64 * (DEAD + passes as f64);
        chunk_penalty += n as f64 * (chunks - 1) as f64;
    }
    (q.scalar_ops as f64 + vec_cost, CHUNK * chunk_penalty)
}

/// Predicted cycles for the whole program under a partition: serial
/// regions run one thread at full width; parallel regions divide their
/// work across `threads`, each with `lanes_per_thread` lanes and MVL
/// `mvl`, paying the serialized re-chunk penalty.
fn cost_total(p: &DlpProfile, threads: usize, lanes_per_thread: usize, mvl: usize) -> f64 {
    let mut total = 0.0;
    for r in &p.regions {
        if r.region == 0 {
            let (c, _) = cost_one(&r.profile, LANES, MAX_VL);
            total += c;
        } else {
            let (c, chunk) = cost_one(&r.profile, lanes_per_thread, mvl);
            total += c / threads as f64 + chunk;
        }
    }
    total
}

/// Classify one region's opportunity.
fn classify(region: u32, q: &Profile) -> VltOpportunity {
    if region == 0 {
        VltOpportunity::Serial
    } else if q.elem_ops == 0 {
        VltOpportunity::ScalarParallel
    } else if q.avg_vl() <= (MAX_VL / 2) as f64 {
        VltOpportunity::ShortVector
    } else {
        VltOpportunity::LongVector
    }
}

/// Rank VLTCFG partitions for a profiled program.
pub fn advise(p: &DlpProfile) -> Advice {
    // Heavy vectorization rules out the pure scalar-VLT 8-thread split
    // (the paper's vector designs stop at V4); a fixed setvl request
    // whose clamped result is discarded additionally pins the program
    // *as written* (reported, not enforced — see [`Advice::max_threads`]).
    let gate = if p.total.pct_vectorization() < 10.0 { 8 } else { 4 };
    let mut max_threads = gate;
    for s in &p.setvl_sites {
        if s.execs > 0 && s.min_request == s.max_request && !s.result_read {
            let mut t = 1;
            for cand in [2usize, 4, 8] {
                if (MAX_VL / cand) as u64 >= s.min_request {
                    t = cand;
                }
            }
            max_threads = max_threads.min(t.max(1));
        }
    }

    let candidates: Vec<usize> =
        [1usize, 2, 4, 8].into_iter().filter(|&t| t == 1 || t <= gate).collect();
    let base = cost_total(p, 1, LANES, MAX_VL);
    let mut ranking: Vec<PartitionScore> = candidates
        .iter()
        .map(|&t| {
            let mvl = MAX_VL / t;
            let est = cost_total(p, t, (LANES / t).max(1), mvl);
            PartitionScore {
                threads: t,
                clusters: 0,
                mvl,
                est_cycles: est,
                speedup: if est > 0.0 { base / est } else { 1.0 },
            }
        })
        .collect();
    ranking.sort_by(|a, b| {
        a.est_cycles.partial_cmp(&b.est_cycles).unwrap().then(a.threads.cmp(&b.threads))
    });
    let best = ranking[0];

    // Hierarchical rows: an 8-thread partition spread over c clusters of
    // a larger machine (8c lanes). Informational — `vladvise` prices the
    // extra clusters with vlt-area.
    let hierarchical: Vec<PartitionScore> = [2usize, 4, 8]
        .into_iter()
        .map(|c| {
            let h = vlt_isa::vltcfg::Hierarchy { threads: 8, clusters: c as u8 };
            let mvl = vlt_isa::vltcfg::effective_mvl(MAX_VL, h);
            let est = cost_total(p, 8, c.max(1), mvl);
            PartitionScore {
                threads: 8,
                clusters: c,
                mvl,
                est_cycles: est,
                speedup: if est > 0.0 { base / est } else { 1.0 },
            }
        })
        .collect();

    let regions: Vec<RegionAdvice> = p
        .regions
        .iter()
        .map(|r| {
            let best_threads = if r.region == 0 {
                1
            } else {
                candidates
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        let ca = {
                            let (c, ch) = cost_one(&r.profile, (LANES / a).max(1), MAX_VL / a);
                            c / a as f64 + ch
                        };
                        let cb = {
                            let (c, ch) = cost_one(&r.profile, (LANES / b).max(1), MAX_VL / b);
                            c / b as f64 + ch
                        };
                        ca.partial_cmp(&cb).unwrap().then(a.cmp(&b))
                    })
                    .unwrap_or(1)
            };
            RegionAdvice {
                region: r.region,
                opportunity: classify(r.region, &r.profile),
                pct_vectorization: r.profile.pct_vectorization(),
                avg_vl: r.profile.avg_vl(),
                top_vl: r.profile.common_vls(1).first().copied(),
                best_threads,
            }
        })
        .collect();

    let serial: f64 = p
        .regions
        .iter()
        .filter(|r| r.region == 0)
        .map(|r| cost_one(&r.profile, LANES, MAX_VL).0)
        .sum();
    let opportunity_pct = if base > 0.0 { 100.0 * (base - serial) / base } else { 0.0 };

    Advice { regions, ranking, hierarchical, best, max_threads, opportunity_pct }
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// Turn a profile into `vlint --dlp` diagnostics: a warning when the walk
/// went inexact, and advisory notes for partition opportunities and
/// hazards.
pub fn dlp_diagnostics(prog: &Program, p: &DlpProfile) -> Vec<Diagnostic> {
    let insts = prog.decoded();
    let at = |code: Code, sidx: usize, msg: String| Diagnostic {
        code,
        severity: code.severity(),
        sidx: Some(sidx),
        disasm: insts.get(sidx).map(disasm).unwrap_or_default(),
        msg,
    };
    let mut out = Vec::new();
    if !p.exact {
        out.push(Diagnostic {
            code: Code::DlpInexact,
            severity: Code::DlpInexact.severity(),
            sidx: None,
            disasm: String::new(),
            msg: if p.notes.is_empty() {
                "the static walk could not stay exact".to_string()
            } else {
                p.notes.join("; ")
            },
        });
    }
    for r in &p.regions {
        if r.region == 0 || r.profile.insts == 0 {
            continue;
        }
        match classify(r.region, &r.profile) {
            VltOpportunity::ScalarParallel => out.push(at(
                Code::DlpScalarRegion,
                r.first_sidx,
                format!(
                    "region {} runs {} scalar ops and no vector element work: scalar VLT applies",
                    r.region, r.profile.scalar_ops
                ),
            )),
            VltOpportunity::ShortVector => out.push(at(
                Code::DlpShortVl,
                r.first_sidx,
                format!(
                    "region {} averages VL {:.1} of {MAX_VL}: a lane partition recovers idle elements",
                    r.region,
                    r.profile.avg_vl()
                ),
            )),
            _ => {}
        }
    }
    for v in &p.vmem_sites {
        if v.pattern != VMemPattern::Unit && v.execs > 0 && v.conflict_execs * 2 > v.execs {
            out.push(at(
                Code::DlpStrideConflict,
                v.sidx,
                format!(
                    "{} vector {} (stride {}..{} bytes) piles elements onto few L2 banks in {}/{} executions",
                    match v.pattern {
                        VMemPattern::Strided => "strided",
                        _ => "indexed",
                    },
                    if v.write { "store" } else { "load" },
                    v.min_stride,
                    v.max_stride,
                    v.conflict_execs,
                    v.execs
                ),
            ));
        }
    }
    for s in &p.setvl_sites {
        if s.execs > 0
            && s.min_request == s.max_request
            && !s.result_read
            && s.min_request > (MAX_VL / 8) as u64
        {
            let mut max_t = 1usize;
            for cand in [2usize, 4, 8] {
                if (MAX_VL / cand) as u64 >= s.min_request {
                    max_t = cand;
                }
            }
            out.push(at(
                Code::DlpSetvlClamp,
                s.sidx,
                format!(
                    "fixed setvl request {} with unread result: the phase cannot re-chunk, pinning VLT to at most {} threads",
                    s.min_request, max_t
                ),
            ));
        }
    }
    out.sort_by_key(|d| (d.sidx, d.code));
    out
}

/// Convenience: analyze and diagnose in one call (the `vlint --dlp` path).
pub fn dlp_report(prog: &Program, opts: &DlpOptions) -> (DlpProfile, Vec<Diagnostic>) {
    let p = analyze(prog, opts);
    let d = dlp_diagnostics(prog, &p);
    (p, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlt_exec::FuncSim;
    use vlt_isa::asm::assemble;

    fn dynamic(prog: &Program) -> vlt_exec::RunSummary {
        let mut sim = FuncSim::new(prog, 1);
        sim.run_to_completion(100_000_000).expect("program halts")
    }

    fn assert_matches_dynamic(src: &str) -> DlpProfile {
        let prog = assemble(src).unwrap();
        let p = analyze(&prog, &DlpOptions::default());
        let s = dynamic(&prog);
        assert!(p.exact, "walk should be exact: {:?}", p.notes);
        assert_eq!(p.total.insts, s.insts, "insts");
        assert_eq!(p.total.scalar_ops, s.scalar_ops, "scalar_ops");
        assert_eq!(p.total.vector_insts, s.vector_insts, "vector_insts");
        assert_eq!(p.total.elem_ops, s.elem_ops, "elem_ops");
        assert_eq!(p.total.vl_histogram.as_slice(), s.vl_histogram.as_slice(), "vl histogram");
        p
    }

    #[test]
    fn range_set_basics() {
        let mut r = RangeSet::default();
        r.insert(10, 20);
        r.insert(30, 40);
        assert!(r.intersects(15, 16));
        assert!(!r.intersects(20, 30));
        r.insert(18, 32); // bridges both
        assert!(r.intersects(25, 26));
        r.remove(12, 35);
        assert!(r.intersects(10, 12));
        assert!(!r.intersects(12, 35));
        assert!(r.intersects(35, 40));
    }

    #[test]
    fn straight_line_vector_profile_is_exact() {
        let p = assert_matches_dynamic(
            ".data\nxs: .dword 1, 2, 3, 4, 5, 6, 7, 8\n.text\n\
             li x1, 8\nsetvl x2, x1\nla x3, xs\nvld v1, x3\n\
             vadd.vv v2, v1, v1\nvst v2, x3\nhalt\n",
        );
        assert_eq!(p.total.vl_histogram[8], 3);
        assert_eq!(p.total.elem_ops, 24);
    }

    #[test]
    fn masked_ops_count_post_mask_elements() {
        // A mask with 2 of 8 bits set: the masked load counts 2 element
        // ops, the unmasked ALU op 8, and `vmsetb` itself (a vector
        // bookkeeping op at VL 8) another 8 — matching the simulator.
        let p = assert_matches_dynamic(
            ".data\nxs: .dword 1, 2, 3, 4, 5, 6, 7, 8\n.text\n\
             li x1, 8\nsetvl x2, x1\nli x4, 5\nvmsetb x4\n\
             la x3, xs\nvld v1, x3, vm\nvadd.vv v2, v1, v1\nhalt\n",
        );
        assert_eq!(p.total.elem_ops, 8 + 2 + 8);
    }

    #[test]
    fn loop_acceleration_matches_concrete_execution() {
        // 100k-iteration counting loop; the budget can only afford a few
        // thousand concrete steps, so only acceleration can finish it.
        let src = "li x1, 0\nli x2, 100000\nli x3, 0\n\
                   loop:\nadd x3, x3, x2\naddi x1, x1, 1\nbne x1, x2, loop\n\
                   sd x3, -8(sp)\nhalt\n";
        let prog = assemble(src).unwrap();
        let opts = DlpOptions { budget: 5_000, ..DlpOptions::default() };
        let p = analyze(&prog, &opts);
        assert!(p.exact, "accelerated walk should be exact: {:?}", p.notes);
        let s = dynamic(&prog);
        assert_eq!(p.total.insts, s.insts);
        assert_eq!(p.total.scalar_ops, s.scalar_ops);
    }

    #[test]
    fn accelerated_counter_store_keeps_final_value_exact() {
        // The loop stores its counter each iteration and the tail reloads
        // it into a branch: the rigid-store extrapolation must keep the
        // reloaded value trusted and exact.
        let src = "li x1, 0\nli x2, 50000\n\
                   loop:\naddi x1, x1, 1\nsd x1, -8(sp)\nbne x1, x2, loop\n\
                   ld x4, -8(sp)\nbne x4, x2, bad\nli x5, 1\nhalt\n\
                   bad:\nli x5, 2\nhalt\n";
        let prog = assemble(src).unwrap();
        let opts = DlpOptions { budget: 2_000, ..DlpOptions::default() };
        let p = analyze(&prog, &opts);
        assert!(p.exact, "{:?}", p.notes);
        let s = dynamic(&prog);
        assert_eq!(p.total.insts, s.insts);
        assert_eq!(p.total.scalar_ops, s.scalar_ops);
    }

    #[test]
    fn strip_mine_loop_histogram_is_exact() {
        // Classic strip-mined vector loop over 100 elements: 1 full VL-64
        // chunk and 1 tail chunk at VL 36.
        let src = ".data\nxs: .space 800\n.text\n\
                   li x1, 100\nla x2, xs\n\
                   loop:\nsetvl x3, x1\nvld v1, x2\nvadd.vs v2, v1, x1\nvst v2, x2\n\
                   slli x4, x3, 3\nadd x2, x2, x4\nsub x1, x1, x3\nbne x1, x0, loop\n\
                   halt\n";
        let p = assert_matches_dynamic(src);
        assert_eq!(p.total.vl_histogram[64], 3);
        assert_eq!(p.total.vl_histogram[36], 3);
        assert_eq!(p.total.elem_ops, 300);
        // The adaptive setvl site is seen as tolerant (result read).
        assert!(p.setvl_sites.iter().all(|s| s.result_read || s.execs == 0));
    }

    #[test]
    fn region_and_epoch_attribution() {
        let src = ".data\nxs: .dword 1, 2, 3, 4\n.text\n\
                   li x1, 4\nsetvl x2, x1\nregion 1\nla x3, xs\nvld v1, x3\nbarrier\n\
                   region 2\nvadd.vv v2, v1, v1\nhalt\n";
        let p = assert_matches_dynamic(src);
        assert_eq!(p.epochs, 2);
        assert_eq!(p.epoch_profiles.len(), 2);
        let r1 = p.regions.iter().find(|r| r.region == 1).unwrap();
        let r2 = p.regions.iter().find(|r| r.region == 2).unwrap();
        assert_eq!(r1.profile.vector_insts, 1);
        assert_eq!(r2.profile.vector_insts, 1);
        assert_eq!(p.epoch_profiles[0].vector_insts, 1);
        assert_eq!(p.epoch_profiles[1].vector_insts, 1);
    }

    #[test]
    fn fixed_unread_setvl_pins_partitions() {
        let src = ".data\nxs: .space 512\n.text\n\
                   li x1, 12\nsetvl x2, x1\nla x3, xs\nregion 1\nvld v1, x3\n\
                   vadd.vv v2, v1, v1\nvst v2, x3\nhalt\n";
        let prog = assemble(src).unwrap();
        let (p, diags) = dlp_report(&prog, &DlpOptions::default());
        assert!(p.exact);
        let site = &p.setvl_sites[0];
        assert_eq!((site.min_request, site.max_request), (12, 12));
        assert!(!site.result_read);
        assert!(diags.iter().any(|d| d.code == Code::DlpSetvlClamp), "{diags:?}");
        let a = advise(&p);
        assert!(a.max_threads <= 4, "mvl 8 cannot satisfy a fixed VL-12 phase");
    }

    #[test]
    fn stride_conflicts_flagged() {
        // Stride 512 bytes = 64 dwords: every element maps to one bank.
        let src = ".data\nxs: .space 8192\n.text\n\
                   li x1, 16\nsetvl x2, x1\nla x3, xs\nli x4, 512\n\
                   region 1\nvlds v1, x3, x4\nhalt\n";
        let prog = assemble(src).unwrap();
        let (p, diags) = dlp_report(&prog, &DlpOptions::default());
        assert!(p.exact);
        let site = p.vmem_sites.iter().find(|v| v.pattern == VMemPattern::Strided).unwrap();
        assert_eq!(site.min_stride, 512);
        assert!(site.conflict_execs > 0);
        assert!(diags.iter().any(|d| d.code == Code::DlpStrideConflict), "{diags:?}");
    }

    #[test]
    fn advisor_prefers_partitioning_short_vectors() {
        // A parallel phase stuck at VL 8 wants lanes split 4 ways; a
        // long-vector phase at VL 64 wants them whole.
        let short = ".data\nxs: .space 512\n.text\nli x1, 8\nsetvl x2, x1\nla x3, xs\n\
                     region 1\nli x5, 200\nloop:\nvld v1, x3\nvfma.vv v2, v1, v1\n\
                     addi x5, x5, -1\nbne x5, x0, loop\nhalt\n";
        let p = analyze(&assemble(short).unwrap(), &DlpOptions::default());
        assert!(p.exact, "{:?}", p.notes);
        let a = advise(&p);
        assert!(a.best.threads >= 4, "short vectors want a split: {:?}", a.ranking);
        let r1 = a.regions.iter().find(|r| r.region == 1).unwrap();
        assert_eq!(r1.opportunity, VltOpportunity::ShortVector);
    }

    #[test]
    fn advisor_keeps_scalar_code_on_eight_threads() {
        let scalar = "region 1\nli x1, 1000\nli x2, 0\nloop:\nadd x2, x2, x1\n\
                      addi x1, x1, -1\nbne x1, x0, loop\nsd x2, -8(sp)\nhalt\n";
        let p = analyze(&assemble(scalar).unwrap(), &DlpOptions::default());
        assert!(p.exact, "{:?}", p.notes);
        let a = advise(&p);
        assert_eq!(a.best.threads, 8, "{:?}", a.ranking);
        assert_eq!(
            a.regions.iter().find(|r| r.region == 1).unwrap().opportunity,
            VltOpportunity::ScalarParallel
        );
    }

    #[test]
    fn diverging_loop_reports_inexact_not_hang() {
        let src = "li x1, 1\nloop:\nadd x2, x2, x1\nbeq x0, x0, loop\nhalt\n";
        let prog = assemble(src).unwrap();
        let opts = DlpOptions { budget: 10_000, ..DlpOptions::default() };
        let p = analyze(&prog, &opts);
        assert!(!p.exact);
        assert!(!p.notes.is_empty());
    }

    #[test]
    fn shared_mode_disjoint_tiles_validate() {
        // Two threads write disjoint tid-indexed tiles; pass 2 must
        // validate and the merged totals must match the 2-thread run.
        let src = ".data\nxs: .space 1024\n.text\n\
                   tid x1\nnthr x2\nla x3, xs\nslli x4, x1, 6\nadd x3, x3, x4\n\
                   li x5, 8\nsetvl x6, x5\nregion 1\nvld v1, x3\nvadd.vv v2, v1, v1\n\
                   vst v2, x3\nbarrier\nhalt\n";
        let prog = assemble(src).unwrap();
        let opts = DlpOptions { threads: 2, ..DlpOptions::default() };
        let p = analyze(&prog, &opts);
        assert!(p.exact, "{:?}", p.notes);
        let mut sim = FuncSim::new(&prog, 2);
        let s = sim.run_to_completion(1_000_000).unwrap();
        assert_eq!(p.total.insts, s.insts);
        assert_eq!(p.total.elem_ops, s.elem_ops);
        // And the hull bounds are available for race pruning: the two
        // threads' vector-store hulls live in epoch 0 and are disjoint.
        let bounds = site_bounds(&prog, 2).expect("exact walks give bounds");
        assert_eq!(bounds.len(), 2);
        let vst = bounds
            .iter()
            .map(|m| m.values().filter_map(|epochs| epochs.get(&0)).cloned().collect::<Vec<_>>())
            .collect::<Vec<_>>();
        assert!(!vst[0].is_empty() && !vst[1].is_empty());
    }

    #[test]
    fn cross_thread_steering_falls_back_to_observed_walk() {
        // Thread 0 stores a flag another thread branches on after the
        // barrier: the symbolic walker's pass 2 refuses to certify, but
        // the communication is barrier-separated, so the epoch-synchronous
        // observed walk certifies the access sets instead.
        let src = ".data\nflag: .dword 0\n.text\n\
                   tid x1\nla x2, flag\nbne x1, x0, reader\n\
                   li x3, 1\nsd x3, 0(x2)\nbarrier\nhalt\n\
                   reader:\nbarrier\nld x4, 0(x2)\nbne x4, x0, done\ndone:\nhalt\n";
        let prog = assemble(src).unwrap();
        let dec = DecodedProgram::new(&prog);
        let opts = DlpOptions { threads: 2, budget: 20_000_000, ..DlpOptions::default() };
        let (_, exact) = analyze_threads(&dec, &opts);
        assert!(!exact, "the symbolic walk must refuse this program");
        assert!(site_bounds(&prog, 2).is_some(), "the observed walk certifies it");
    }

    #[test]
    fn same_epoch_conflict_defeats_bounds() {
        // Both threads write the steering slot in the same epoch and then
        // load it back to index another access: the walker's pass 2
        // refuses (a cross-tainted value steers an address) and the
        // observed walk sees a same-epoch write/write set conflict, so no
        // bounds may be certified by either path.
        let src = ".data\nidx: .dword 0\nxs: .space 64\n.text\n\
                   tid x1\nla x2, idx\nsd x1, 0(x2)\nld x3, 0(x2)\n\
                   la x4, xs\nslli x5, x3, 3\nadd x4, x4, x5\nld x6, 0(x4)\n\
                   barrier\nhalt\n";
        let prog = assemble(src).unwrap();
        assert!(site_bounds(&prog, 2).is_none());
    }
}
