//! Per-thread barrier-epoch footprint analysis (the static half of vlrace).
//!
//! The race detector re-runs an abstract interpretation of the program once
//! per concrete thread id. Unlike `absint` (which tracks constants and
//! definedness for a *generic* thread), this pass gives every run a concrete
//! `tid`/`nthr`, so thread-dependent branches prune and thread-dependent
//! address math stays exact. Register values are tracked as affine *forms*
//! `c + Σ kᵢ·vᵢ` over analysis variables:
//!
//! * [`VarId::Slot`] — a loop-join variable created when values disagree at
//!   a CFG join. Quantities whose per-iteration deltas are parallel share
//!   one slot variable, which preserves the pointer/counter relation that
//!   strip-mined loops rely on (`ptr = base + 8·s`, `i = first + s`).
//! * [`VarId::Vl`] — the result of a `setvl` whose request is not constant.
//!   The requested form is kept as a symbolic *cap*, so a footprint end
//!   like `base + 8·(i + lane)` cancels back to the loop bound.
//! * [`VarId::Gen`] — a value bounded by construction (`andi`, or a load
//!   folded from the initial data image).
//! * [`VarId::Lane`] — the element index of one vector memory access.
//!
//! Loop joins validate that all members of a slot advance consistently
//! (the *phi* form); inconsistent members demote to hull variables that
//! only track a value range. The epoch counter (number of executed
//! `barrier`s) is itself a form and participates in the same machinery, so
//! a barrier inside a loop yields `epoch = first + s` rather than ⊤.
//!
//! The output per run is a set of [`Access`]es — one per memory
//! instruction — with symbolic address and epoch forms plus the branch
//! refinements in scope, which `races` intersects across runs.

use std::collections::{BTreeMap, BTreeSet};

use vlt_isa::{Op, DATA_BASE, MAX_VL, STACK_BASE, STACK_SIZE};

use crate::cfg::{Cfg, Term};

/// A closed or half-open integer range: `(lo, hi)`, `None` = unbounded.
pub(crate) type Rng = (Option<i64>, Option<i64>);

/// Branch refinements in scope at a program point: per-variable bounds.
pub(crate) type Refine = BTreeMap<VarId, Rng>;

/// Identity of one analysis variable (within a single per-tid run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum VarId {
    /// Join variable `slot` created at the head of CFG block `block`.
    Slot {
        /// CFG block of the join that owns the variable.
        block: u32,
        /// Slot index within that join.
        slot: u32,
    },
    /// Result of the `setvl` at static instruction `sidx`.
    Vl(u32),
    /// A generated bounded value (`andi` mask or folded load) at `sidx`.
    Gen(u32),
    /// Element index of the vector memory access at `sidx`.
    Lane(u32),
}

/// A variable tagged with a *side* so two runs can share a form space.
/// Within a run the side is always 0; `races` retags private variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct Var {
    /// 0 = shared/sync (or run-local), 1/2 = private to one side of a pair.
    pub side: u8,
    /// The underlying run-local variable.
    pub id: VarId,
}

impl Var {
    fn local(id: VarId) -> Var {
        Var { side: 0, id }
    }
}

/// An affine form `c + Σ kᵢ·vᵢ` with wrapping i64 arithmetic.
/// Terms are sorted by variable and never have a zero coefficient.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct Form {
    /// Constant part.
    pub c: i64,
    /// Affine terms `(variable, coefficient)`.
    pub t: Vec<(Var, i64)>,
}

impl Form {
    pub(crate) fn konst(c: i64) -> Form {
        Form { c, t: Vec::new() }
    }

    pub(crate) fn var(id: VarId) -> Form {
        Form { c: 0, t: vec![(Var::local(id), 1)] }
    }

    pub(crate) fn is_const(&self) -> Option<i64> {
        if self.t.is_empty() {
            Some(self.c)
        } else {
            None
        }
    }

    pub(crate) fn add(&self, o: &Form) -> Form {
        let mut t = Vec::with_capacity(self.t.len() + o.t.len());
        let (mut i, mut j) = (0, 0);
        while i < self.t.len() || j < o.t.len() {
            if j == o.t.len() || (i < self.t.len() && self.t[i].0 < o.t[j].0) {
                t.push(self.t[i]);
                i += 1;
            } else if i == self.t.len() || o.t[j].0 < self.t[i].0 {
                t.push(o.t[j]);
                j += 1;
            } else {
                let k = self.t[i].1.wrapping_add(o.t[j].1);
                if k != 0 {
                    t.push((self.t[i].0, k));
                }
                i += 1;
                j += 1;
            }
        }
        Form { c: self.c.wrapping_add(o.c), t }
    }

    pub(crate) fn neg(&self) -> Form {
        Form {
            c: self.c.wrapping_neg(),
            t: self.t.iter().map(|&(v, k)| (v, k.wrapping_neg())).collect(),
        }
    }

    pub(crate) fn sub(&self, o: &Form) -> Form {
        self.add(&o.neg())
    }

    pub(crate) fn addc(&self, c: i64) -> Form {
        Form { c: self.c.wrapping_add(c), t: self.t.clone() }
    }

    pub(crate) fn scale(&self, k: i64) -> Form {
        if k == 0 {
            return Form::konst(0);
        }
        Form {
            c: self.c.wrapping_mul(k),
            t: self.t.iter().map(|&(v, co)| (v, co.wrapping_mul(k))).collect(),
        }
    }

    /// Exact division by a constant; `None` unless every part divides.
    pub(crate) fn divide(&self, k: i64) -> Option<Form> {
        if k == 0 {
            return None;
        }
        if self.c % k != 0 || self.t.iter().any(|&(_, co)| co % k != 0) {
            return None;
        }
        Some(Form { c: self.c / k, t: self.t.iter().map(|&(v, co)| (v, co / k)).collect() })
    }

    /// Substitute `v := repl` (used for cap substitution and enumeration).
    pub(crate) fn subst(&self, v: Var, repl: &Form) -> Form {
        match self.t.iter().find(|&&(w, _)| w == v) {
            None => self.clone(),
            Some(&(_, k)) => {
                let mut base = Form {
                    c: self.c,
                    t: self.t.iter().copied().filter(|&(w, _)| w != v).collect(),
                };
                base = base.add(&repl.scale(k));
                base
            }
        }
    }

    /// gcd of the term coefficients (0 when the form is constant).
    pub(crate) fn gcd_terms(&self) -> i64 {
        self.t.iter().fold(0i64, |g, &(_, k)| gcd(g, k.unsigned_abs() as i64))
    }
}

pub(crate) fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

pub(crate) fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

pub(crate) fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    -((-a).div_euclid(b))
}

/// What a variable is; drives range-update discipline and sync eligibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Origin {
    /// Loop-join variable (range accumulated with widening).
    Slot,
    /// `setvl` result (range replaced each visit; request form as cap).
    Vl,
    /// Load folded against the initial data image.
    Fold,
    /// `andi`-bounded value.
    Andi,
    /// Vector element index of one access.
    Lane,
}

/// Everything known about one analysis variable.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct VarInfo {
    /// Constant lower bound, if any.
    pub lo: Option<i64>,
    /// Constant upper bound, if any.
    pub hi: Option<i64>,
    /// Symbolic upper bounds (forms the variable never exceeds).
    pub caps: Vec<Form>,
    /// Symbolic lower bounds.
    pub floors: Vec<Form>,
    /// Widening counters.
    lo_grow: u32,
    hi_grow: u32,
    /// Creation-time range that any narrowed range must still cover
    /// (slot creation value for counters, the demotion hull for hulls).
    base: Rng,
    /// Residue class: every value of the variable is ≡ 0 (mod step),
    /// maintained as the gcd of the generators of all observed advances
    /// (a counter that only ever advances by ±32 keeps step 32). Stride
    /// structure the interval hull loses lives here; 1 means no info.
    pub step: i64,
    /// True while every observed advance is `s := s + 1`.
    pub unit_step: bool,
    /// What kind of variable this is.
    pub origin: Origin,
}

impl VarInfo {
    fn slot() -> VarInfo {
        VarInfo {
            lo: Some(0),
            hi: Some(0),
            caps: Vec::new(),
            floors: Vec::new(),
            lo_grow: 0,
            hi_grow: 0,
            base: (Some(0), Some(0)),
            step: 1,
            unit_step: true,
            origin: Origin::Slot,
        }
    }
}

/// Bound-evaluation environment: per-variable ranges and symbolic bounds.
pub(crate) trait Env {
    /// Constant range of a variable.
    fn rng(&self, v: Var) -> Rng;
    /// Symbolic upper bounds of a variable (same form space).
    fn caps(&self, v: Var) -> Vec<Form>;
    /// Symbolic lower bounds of a variable.
    fn floors(&self, v: Var) -> Vec<Form>;
}

const EVAL_DEPTH: usize = 6;

/// Least upper bound of a form's value under `env`, or `None` if unbounded.
/// Tries the direct per-variable bounds and, recursively, every cap/floor
/// substitution — this is what cancels induction variables against their
/// loop bounds (`i + vl ≤ n` when `cap(vl) = n − i`).
pub(crate) fn cub<E: Env>(env: &E, f: &Form, visited: &mut Vec<Var>) -> Option<i64> {
    let mut best: Option<i64> = direct_bound(env, f, true);
    if visited.len() >= EVAL_DEPTH {
        return best;
    }
    for &(v, k) in &f.t {
        if visited.contains(&v) {
            continue;
        }
        let subs = if k > 0 { env.caps(v) } else { env.floors(v) };
        for s in &subs {
            visited.push(v);
            let cand = cub(env, &f.subst(v, s), visited);
            visited.pop();
            best = opt_min(best, cand);
        }
    }
    best
}

/// Greatest lower bound of a form's value under `env` (mirror of [`cub`]).
pub(crate) fn clb<E: Env>(env: &E, f: &Form, visited: &mut Vec<Var>) -> Option<i64> {
    let mut best: Option<i64> = direct_bound(env, f, false);
    if visited.len() >= EVAL_DEPTH {
        return best;
    }
    for &(v, k) in &f.t {
        if visited.contains(&v) {
            continue;
        }
        let subs = if k > 0 { env.floors(v) } else { env.caps(v) };
        for s in &subs {
            visited.push(v);
            let cand = clb(env, &f.subst(v, s), visited);
            visited.pop();
            best = opt_max(best, cand);
        }
    }
    best
}

fn direct_bound<E: Env>(env: &E, f: &Form, upper: bool) -> Option<i64> {
    let mut acc = f.c as i128;
    for &(v, k) in &f.t {
        let (lo, hi) = env.rng(v);
        let b = if (k > 0) == upper { hi } else { lo };
        acc += k as i128 * b? as i128;
    }
    i64::try_from(acc).ok()
}

use crate::interval::{max_opt as opt_max, min_opt as opt_min};

fn rng_and(a: Rng, b: Rng) -> Rng {
    (opt_max(a.0, b.0), opt_min(a.1, b.1))
}

/// A scalar register value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Val {
    /// An affine form.
    F(Form),
    /// A 0/1 comparison result: value is `(d < 0) as u64`.
    Cmp(Form),
    /// Unknown.
    Top,
}

impl Val {
    fn form(&self) -> Option<&Form> {
        match self {
            Val::F(f) => Some(f),
            _ => None,
        }
    }

    fn konst(c: i64) -> Val {
        Val::F(Form::konst(c))
    }

    fn is_const(&self) -> Option<i64> {
        self.form().and_then(Form::is_const)
    }
}

/// A vector register value: element values within `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum VVal {
    /// All enabled elements lie within the inclusive form range.
    Range(Form, Form),
    /// Unknown.
    Top,
}

/// One quantity tracked by the join machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Qty {
    /// Integer register.
    X(u8),
    /// The vector length.
    Vl,
    /// The barrier-epoch counter.
    Epoch,
}

/// Membership of a quantity in a join slot: `value = first + coef·s`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Member {
    /// Slot index within the join.
    pub slot: u32,
    /// Per-quantity scale of the slot variable.
    pub coef: i64,
    /// Value of the quantity when the slot variable is 0.
    pub first: Form,
}

/// How a slot evolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotKind {
    /// All members advance consistently; phi is meaningful.
    Counter,
    /// Demoted: a single-member slot that only tracks a value hull.
    Hull,
}

/// Join state of one CFG block.
#[derive(Debug, Clone, Default)]
pub(crate) struct SlotState {
    /// Quantity → slot membership.
    pub assign: BTreeMap<Qty, Member>,
    /// Per-slot kind.
    pub kinds: Vec<SlotKind>,
    /// Per-slot advance forms, keyed by the predecessor block the edge
    /// came from (a loop head has a re-entry advance *and* a backedge
    /// advance, and they legitimately differ).
    pub phi: Vec<BTreeMap<u32, Form>>,
    /// Quantities forced to ⊤ at this join.
    pub top: BTreeSet<Qty>,
}

/// Abstract machine state at a program point.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct St {
    x: Vec<Val>,
    v: Vec<VVal>,
    vl: Val,
    mvl: Option<i64>,
    epoch: Form,
    refine: Refine,
}

impl St {
    fn init(tid: usize) -> St {
        let mut x = vec![Val::Top; 32];
        x[0] = Val::konst(0);
        x[30] = Val::konst((STACK_BASE + (tid as u64 + 1) * STACK_SIZE) as i64);
        St {
            x,
            v: vec![VVal::Top; 32],
            vl: Val::konst(MAX_VL as i64),
            mvl: Some(MAX_VL as i64),
            epoch: Form::konst(0),
            refine: Refine::new(),
        }
    }

    fn get_q(&self, q: Qty) -> Val {
        match q {
            Qty::X(r) => self.x[r as usize].clone(),
            Qty::Vl => self.vl.clone(),
            Qty::Epoch => Val::F(self.epoch.clone()),
        }
    }

    fn set_q(&mut self, q: Qty, v: Val) {
        match q {
            Qty::X(r) => self.x[r as usize] = v,
            Qty::Vl => self.vl = v,
            Qty::Epoch => {
                // The epoch must stay a form; ⊤ never reaches here because
                // both sides of an epoch join are always forms.
                if let Val::F(f) = v {
                    self.epoch = f;
                }
            }
        }
    }
}

fn qtys() -> impl Iterator<Item = Qty> {
    (1u8..32).map(Qty::X).chain([Qty::Vl, Qty::Epoch])
}

/// One memory access site in one per-tid run.
#[derive(Debug, Clone)]
pub(crate) struct Access {
    /// Static instruction index.
    pub sidx: usize,
    /// True for stores.
    pub write: bool,
    /// Element size in bytes.
    pub esize: u8,
    /// Address form (`None` when the analysis cannot bound the address).
    pub addr: Option<Form>,
    /// For full-word stores: hull of the value(s) written, evaluated
    /// against the converged run (`(None, None)` = unbounded, and always
    /// for loads and sub-word stores). This is the content lattice's
    /// write half: `races` folds these into the store-value overlay that
    /// bounds later loads from the same ranges.
    pub val: Rng,
    /// Barrier-epoch form at the access.
    pub epoch: Form,
    /// Branch refinements in scope.
    pub refine: Refine,
}

/// A load folded against the initial data image (and, when `widened`,
/// the store-value overlay).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Fold {
    /// The address form that was enumerated.
    pub addr: Form,
    /// Byte span `[lo, hi)` of data the fold read.
    pub span: (i64, i64),
    /// The fold's value hull absorbed overlay store ranges. A widened
    /// fold is still a sound bound, but it must never be treated as
    /// synchronized across threads: mid-epoch, two threads can observe
    /// different values from a concurrently written location.
    pub widened: bool,
}

/// Result of analyzing the program as one concrete thread.
#[derive(Debug)]
pub(crate) struct TidRun {
    /// The thread id this run modeled.
    pub tid: usize,
    /// One entry per reachable memory instruction.
    pub accesses: Vec<Access>,
    /// Final variable ranges/bounds.
    pub vars: BTreeMap<VarId, VarInfo>,
    /// Final join states, per CFG block.
    pub joins: BTreeMap<usize, SlotState>,
    /// Folded loads (for cross-run invalidation and sync checks).
    pub folds: BTreeMap<usize, Fold>,
    /// True when the fixpoint did not converge; treat every access as
    /// unbounded.
    pub failed: bool,
}

impl TidRun {
    /// Run-local bound environment for evaluating this run's forms.
    pub(crate) fn env<'a>(&'a self, refine: &'a Refine) -> impl Env + 'a {
        RunEnv { vars: &self.vars, refine, skip_global: None }
    }
}

/// Run-local [`Env`]: global variable info intersected with a refinement,
/// optionally ignoring the global range of one variable (for leap bounds).
struct RunEnv<'a> {
    vars: &'a BTreeMap<VarId, VarInfo>,
    refine: &'a Refine,
    skip_global: Option<VarId>,
}

impl Env for RunEnv<'_> {
    fn rng(&self, v: Var) -> Rng {
        let global = if self.skip_global == Some(v.id) {
            (None, None)
        } else {
            self.vars.get(&v.id).map_or((None, None), |i| (i.lo, i.hi))
        };
        let refined = self.refine.get(&v.id).copied().unwrap_or((None, None));
        rng_and(global, refined)
    }

    fn caps(&self, v: Var) -> Vec<Form> {
        self.vars.get(&v.id).map_or(Vec::new(), |i| i.caps.clone())
    }

    fn floors(&self, v: Var) -> Vec<Form> {
        self.vars.get(&v.id).map_or(Vec::new(), |i| i.floors.clone())
    }
}

const MAX_SWEEPS: usize = 80;
const GROW_LIMIT: u32 = 3;
const NARROW_ROUNDS: usize = 6;
const FOLD_SPAN: i64 = 256;
const VFOLD_SPAN: i64 = 1 << 16;
const SCALE_LIMIT: i64 = 1 << 40;

/// Arrival bounds accumulated for one variable during a narrowing sweep.
/// A side is only trustworthy if *every* advancing edge produced a finite
/// leap for it; a single unbounded edge poisons the side.
struct NarrowProp {
    lo: Option<i64>,
    hi: Option<i64>,
    lo_ok: bool,
    hi_ok: bool,
}

impl NarrowProp {
    fn new() -> NarrowProp {
        NarrowProp { lo: None, hi: None, lo_ok: true, hi_ok: true }
    }
}

pub(crate) struct Runner<'a> {
    cfg: &'a Cfg,
    data: &'a [u8],
    tid: usize,
    nthr: usize,
    overlay: &'a crate::content::Overlay,
    image: Option<crate::content::DataHull>,
    vars: BTreeMap<VarId, VarInfo>,
    joins: BTreeMap<usize, SlotState>,
    folds: BTreeMap<usize, Fold>,
    states: Vec<Option<St>>,
    dirty: bool,
    narrow_acc: Option<BTreeMap<VarId, NarrowProp>>,
    debug: bool,
    log: Vec<String>,
}

/// Analyze the program as concrete thread `tid` of `nthr`. `overlay` is
/// the store-value overlay from the previous fold round (`races` iterates
/// to an overlay fixpoint; an empty overlay means "trust the initial data
/// image", a poisoned one forbids every fold).
pub(crate) fn analyze_tid(
    cfg: &Cfg,
    data: &[u8],
    tid: usize,
    nthr: usize,
    overlay: &crate::content::Overlay,
) -> TidRun {
    let mut r = Runner {
        cfg,
        data,
        tid,
        nthr,
        overlay,
        image: None,
        vars: BTreeMap::new(),
        joins: BTreeMap::new(),
        folds: BTreeMap::new(),
        states: vec![None; cfg.blocks.len()],
        dirty: false,
        narrow_acc: None,
        debug: std::env::var_os("VLRACE_DEBUG").is_some(),
        log: Vec::new(),
    };
    let failed = !r.fixpoint();
    if !failed {
        r.narrow();
    }
    if r.debug {
        eprintln!("vlrace tid {tid} converged={}", !failed);
        for (id, info) in &r.vars {
            eprintln!(
                "  {id:?}: [{:?},{:?}] grow=({},{}) unit={} caps={:?} floors={:?}",
                info.lo,
                info.hi,
                info.lo_grow,
                info.hi_grow,
                info.unit_step,
                info.caps,
                info.floors
            );
        }
    }
    let accesses = if failed { r.collect_unknown() } else { r.emit() };
    TidRun { tid, accesses, vars: r.vars, joins: r.joins, folds: r.folds, failed }
}

impl Runner<'_> {
    fn fixpoint(&mut self) -> bool {
        let rpo = self.cfg.rpo();
        self.states[self.cfg.entry] = Some(St::init(self.tid));
        for sweep in 0..MAX_SWEEPS {
            self.dirty = false;
            self.log.clear();
            let mut state_changed: Option<usize> = None;
            for &b in &rpo {
                let Some(st0) = self.states[b].clone() else { continue };
                let mut st = st0;
                self.transfer_block(b, &mut st, &mut None);
                for (succ, cond) in self.edges(b) {
                    if let Some(rst) = self.refine_edge(&st, b, cond, succ) {
                        if self.join(succ, rst, b) {
                            state_changed.get_or_insert(succ);
                        }
                    }
                }
            }
            if !self.dirty && state_changed.is_none() {
                return true;
            }
            if self.debug && sweep + 2 >= MAX_SWEEPS {
                eprintln!(
                    "vlrace tid {} sweep {sweep}: state_changed={state_changed:?} log:",
                    self.tid
                );
                for l in &self.log {
                    eprintln!("  {l}");
                }
            }
        }
        false
    }

    /// Successor edges of a block with the branch polarity that guards them.
    fn edges(&self, b: usize) -> Vec<(usize, Option<bool>)> {
        match self.cfg.blocks[b].term {
            Term::FallThrough => {
                self.cfg.blocks[b].succs.first().map(|&s| (s, None)).into_iter().collect()
            }
            Term::Jump(t) => vec![(t, None)],
            Term::Branch { taken, fall } => {
                let mut v = vec![(taken, Some(true))];
                if let Some(f) = fall {
                    v.push((f, Some(false)));
                }
                v
            }
            Term::Halt | Term::Indirect | Term::OffEnd => Vec::new(),
        }
    }

    fn env<'r>(&'r self, refine: &'r Refine) -> RunEnv<'r> {
        RunEnv { vars: &self.vars, refine, skip_global: None }
    }

    fn ub(&self, f: &Form, refine: &Refine) -> Option<i64> {
        cub(&self.env(refine), f, &mut Vec::new())
    }

    fn lb(&self, f: &Form, refine: &Refine) -> Option<i64> {
        clb(&self.env(refine), f, &mut Vec::new())
    }

    // ---- derived variables --------------------------------------------

    /// Install or replace a derived variable's info (Vl/Gen/Lane). These
    /// are *functions of the converging state*, so they are replaced, not
    /// widened; convergence is detected through the dirty flag.
    fn set_derived(&mut self, id: VarId, info: VarInfo) -> Form {
        match self.vars.get(&id) {
            Some(old) if *old == info => {}
            _ => {
                if self.debug {
                    let old = self.vars.get(&id);
                    self.log.push(format!("set_derived {id:?}: {old:?} -> {info:?}"));
                }
                self.vars.insert(id, info);
                self.dirty = true;
            }
        }
        Form::var(id)
    }

    /// Widen a slot variable's range. `lo`/`hi` bound the advance form
    /// under the full environment (the creep values); `leap` bounds it
    /// with the variable's *own* global range masked out, so a finite
    /// leap soundly covers every backedge arrival on its own — growth
    /// jumps straight to it instead of creeping one iteration per sweep,
    /// and no growth is needed at all once the leap is inside the range.
    fn widen(&mut self, id: VarId, lo: Option<i64>, hi: Option<i64>, leap: Rng, advances: bool) {
        let narrowing = self.narrow_acc.is_some();
        let info = self.vars.get_mut(&id).expect("slot var registered");
        let proposal_hi = match leap.1 {
            Some(l) => Some(l),
            None => hi,
        };
        let need_hi = match (info.hi, proposal_hi) {
            (Some(old), Some(p)) => p > old,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if need_hi {
            info.hi = if narrowing {
                // Post-fixpoint: grow to cover without burning counters
                // (bounded NARROW_ROUNDS guarantees termination).
                proposal_hi.map(|p| info.hi.map_or(p, |old| p.max(old)))
            } else {
                info.hi_grow += 1;
                if info.hi_grow > GROW_LIMIT {
                    None
                } else {
                    proposal_hi.map(|p| info.hi.map_or(p, |old| p.max(old)))
                }
            };
            self.dirty = true;
            if self.debug {
                let msg = format!("widen hi {id:?}: prop={proposal_hi:?} leap={leap:?}");
                self.log.push(msg);
            }
        }
        let proposal_lo = match leap.0 {
            Some(l) => Some(l),
            None => lo,
        };
        let need_lo = match (info.lo, proposal_lo) {
            (Some(old), Some(p)) => p < old,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if need_lo {
            info.lo = if narrowing {
                proposal_lo.map(|p| info.lo.map_or(p, |old| p.min(old)))
            } else {
                info.lo_grow += 1;
                if info.lo_grow > GROW_LIMIT {
                    None
                } else {
                    proposal_lo.map(|p| info.lo.map_or(p, |old| p.min(old)))
                }
            };
            self.dirty = true;
            if self.debug {
                let msg = format!("widen lo {id:?}: prop={proposal_lo:?} leap={leap:?}");
                self.log.push(msg);
            }
        }
        // During a narrowing sweep, record every advancing edge's arrival
        // bounds. Identity advances contribute no values beyond the
        // variable's existing range, so they neither feed nor poison the
        // accumulator.
        if narrowing && advances {
            if let Some(acc) = &mut self.narrow_acc {
                let e = acc.entry(id).or_insert_with(NarrowProp::new);
                match leap.1 {
                    Some(h) => e.hi = Some(e.hi.map_or(h, |o| o.max(h))),
                    None => e.hi_ok = false,
                }
                match leap.0 {
                    Some(l) => e.lo = Some(e.lo.map_or(l, |o| o.min(l))),
                    None => e.lo_ok = false,
                }
            }
        }
    }

    /// Bounded narrowing after the widening fixpoint converges. Widening
    /// burns per-variable grow counters in sweep order, so a dependent
    /// slot can be forced to ∞ while its supplier's refine-derived bound
    /// is still propagating — and `widen`'s (None, _) arm makes that loss
    /// permanent. At the fixpoint every arrival is bounded by its edge's
    /// leap value, so re-sweeping and adopting `hull(base, arrivals)` for
    /// sides where *every* advancing edge has a finite leap soundly
    /// restores finite ranges. Each round can unlock the next (supplier
    /// before dependent), hence the bounded iteration.
    fn narrow(&mut self) {
        let rpo = self.cfg.rpo();
        self.narrow_rounds(&rpo);
        self.narrow_optimistic(&rpo);
        self.narrow_rounds(&rpo);
    }

    /// One re-sweep at the fixpoint with arrival-bound recording on.
    fn narrow_sweep(&mut self, rpo: &[usize]) -> BTreeMap<VarId, NarrowProp> {
        self.narrow_acc = Some(BTreeMap::new());
        self.log.clear();
        for &b in rpo {
            let Some(st0) = self.states[b].clone() else { continue };
            let mut st = st0;
            self.transfer_block(b, &mut st, &mut None);
            for (succ, cond) in self.edges(b) {
                if let Some(rst) = self.refine_edge(&st, b, cond, succ) {
                    self.join(succ, rst, b);
                }
            }
        }
        self.narrow_acc.take().expect("narrow accumulator")
    }

    /// Conservative narrowing rounds: adopt `hull(base, arrivals)` for a
    /// side only when *every* advancing edge has a finite leap. Each round
    /// can unlock the next (supplier before dependent).
    fn narrow_rounds(&mut self, rpo: &[usize]) {
        for round in 0..NARROW_ROUNDS {
            let acc = self.narrow_sweep(rpo);
            let mut changed = false;
            for (id, p) in acc {
                let Some(info) = self.vars.get_mut(&id) else { continue };
                if info.hi.is_none() && p.hi_ok {
                    if let (Some(h), Some(bh)) = (p.hi, info.base.1) {
                        info.hi = Some(h.max(bh));
                        changed = true;
                        if self.debug {
                            eprintln!(
                                "vlrace tid {} narrow round {round}: hi {id:?} -> {:?}",
                                self.tid, info.hi
                            );
                        }
                    }
                }
                if info.lo.is_none() && p.lo_ok {
                    if let (Some(l), Some(bl)) = (p.lo, info.base.0) {
                        info.lo = Some(l.min(bl));
                        changed = true;
                        if self.debug {
                            eprintln!(
                                "vlrace tid {} narrow round {round}: lo {id:?} -> {:?}",
                                self.tid, info.lo
                            );
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Guess-and-verify narrowing for mutually dependent unbounded
    /// variables. The same induction value rebased at several loop heads
    /// forms a copy cycle (b2 → b3 → b4 → b2): each head's bound depends
    /// on the next, so per-variable narrowing never fires. Instead, seed
    /// every still-unbounded side from its finite edges (or its base),
    /// install all guesses simultaneously, and re-sweep: if every arrival
    /// stays within its guess, the set is a valid mutual invariant
    /// (coinduction) and is kept; arrivals above a guess raise it and
    /// retry; a side with a genuinely unbounded edge drops out. Sweeps
    /// under a hypothesis that is later raised or dropped may bake
    /// unsound refinements into states/joins/folds, so each attempt
    /// starts from a snapshot and only a verified attempt's state is
    /// kept.
    fn narrow_optimistic(&mut self, rpo: &[usize]) {
        let seed = self.narrow_sweep(rpo);
        let mut hi_guess: BTreeMap<VarId, i64> = BTreeMap::new();
        let mut lo_guess: BTreeMap<VarId, i64> = BTreeMap::new();
        for (id, p) in &seed {
            let Some(info) = self.vars.get(id) else { continue };
            if info.hi.is_none() {
                if let Some(bh) = info.base.1 {
                    hi_guess.insert(*id, p.hi.map_or(bh, |h| h.max(bh)));
                }
            }
            if info.lo.is_none() {
                if let Some(bl) = info.base.0 {
                    lo_guess.insert(*id, p.lo.map_or(bl, |l| l.min(bl)));
                }
            }
        }
        if hi_guess.is_empty() && lo_guess.is_empty() {
            return;
        }
        let snap = (self.vars.clone(), self.joins.clone(), self.folds.clone(), self.states.clone());
        let budget = 8 + hi_guess.len() + lo_guess.len();
        for attempt in 0..budget {
            self.vars = snap.0.clone();
            self.joins = snap.1.clone();
            self.folds = snap.2.clone();
            self.states = snap.3.clone();
            for (id, g) in &hi_guess {
                self.vars.get_mut(id).expect("guessed var").hi = Some(*g);
            }
            for (id, g) in &lo_guess {
                self.vars.get_mut(id).expect("guessed var").lo = Some(*g);
            }
            let acc = self.narrow_sweep(rpo);
            let mut ok = true;
            let mut drop_hi: Vec<VarId> = Vec::new();
            let mut drop_lo: Vec<VarId> = Vec::new();
            for (id, g) in &mut hi_guess {
                let (arr, valid) = acc.get(id).map_or((None, true), |p| (p.hi, p.hi_ok));
                if !valid {
                    drop_hi.push(*id);
                    continue;
                }
                let bh = self.vars[id].base.1.expect("seed guarded base");
                let new = arr.map_or(bh, |h| h.max(bh));
                if new > *g {
                    *g = new;
                    ok = false;
                }
            }
            for (id, g) in &mut lo_guess {
                let (arr, valid) = acc.get(id).map_or((None, true), |p| (p.lo, p.lo_ok));
                if !valid {
                    drop_lo.push(*id);
                    continue;
                }
                let bl = self.vars[id].base.0.expect("seed guarded base");
                let new = arr.map_or(bl, |l| l.min(bl));
                if new < *g {
                    *g = new;
                    ok = false;
                }
            }
            if !drop_hi.is_empty() || !drop_lo.is_empty() {
                for id in drop_hi {
                    hi_guess.remove(&id);
                }
                for id in drop_lo {
                    lo_guess.remove(&id);
                }
                if hi_guess.is_empty() && lo_guess.is_empty() {
                    break;
                }
                continue;
            }
            if ok {
                if self.debug {
                    for (id, g) in &hi_guess {
                        eprintln!(
                            "vlrace tid {} narrow optimistic (attempt {attempt}): hi {id:?} -> {g}",
                            self.tid
                        );
                    }
                    for (id, g) in &lo_guess {
                        eprintln!(
                            "vlrace tid {} narrow optimistic (attempt {attempt}): lo {id:?} -> {g}",
                            self.tid
                        );
                    }
                }
                return;
            }
        }
        // No verified assignment: restore the pre-hypothesis state.
        self.vars = snap.0;
        self.joins = snap.1;
        self.folds = snap.2;
        self.states = snap.3;
    }

    /// Gcd of the residue generators of one advance form: terms over
    /// *other* variables contribute `|k|·step(w)` (w ≡ 0 mod step(w)),
    /// the constant contributes `|c|`, and the variable's own term
    /// preserves any residue so it contributes nothing. An identity
    /// advance yields 0, the gcd identity.
    fn edge_step(&self, id: VarId, phi: &Form) -> i64 {
        let mut g = phi.c.abs();
        for &(w, k) in &phi.t {
            if w.id == id {
                continue;
            }
            let ws = self.vars.get(&w.id).map_or(1, |i| i.step.max(1));
            g = gcd(g, k.saturating_abs().saturating_mul(ws));
        }
        g
    }

    /// Evaluate an advance form with the variable's own global range
    /// masked out (only edge refinements bound it). Used as the widening
    /// leap target.
    fn leap_rng(&self, id: VarId, phi: &Form, refine: &Refine) -> Rng {
        let env = RunEnv { vars: &self.vars, refine, skip_global: Some(id) };
        (clb(&env, phi, &mut Vec::new()), cub(&env, phi, &mut Vec::new()))
    }

    // ---- join ----------------------------------------------------------

    fn join(&mut self, b: usize, inc: St, pred: usize) -> bool {
        let Some(cur) = self.states[b].clone() else {
            self.states[b] = Some(inc);
            return true;
        };
        let mut slots = self.joins.remove(&b).unwrap_or_default();
        let mut merged = cur.clone();

        let mut phis: BTreeMap<u32, Vec<Form>> = BTreeMap::new();
        let mut demote: BTreeSet<u32> = BTreeSet::new();
        let mut newly: Vec<(Qty, Form, Form)> = Vec::new(); // (q, cur, delta)

        for q in qtys() {
            if slots.top.contains(&q) {
                merged.set_q(q, Val::Top);
                continue;
            }
            let cv = merged.get_q(q);
            let iv = inc.get_q(q);
            match (&cv, &iv) {
                (Val::F(fc), Val::F(fi)) => {
                    if let Some(m) = slots.assign.get(&q) {
                        match fi.sub(&m.first).divide(m.coef) {
                            Some(phi) => phis.entry(m.slot).or_default().push(phi),
                            None => {
                                demote.insert(m.slot);
                            }
                        }
                    } else if fc != fi {
                        newly.push((q, fc.clone(), fi.sub(fc)));
                    }
                }
                (Val::Cmp(a), Val::Cmp(bb)) if a == bb => {}
                (Val::Top, Val::Top) => {}
                _ => {
                    // Mismatched shapes (or one side ⊤): force ⊤ forever.
                    if q == Qty::Epoch {
                        // Epochs are always forms; unreachable, but keep
                        // the state sound by hulling instead.
                        continue;
                    }
                    slots.top.insert(q);
                    slots.assign.remove(&q);
                    merged.set_q(q, Val::Top);
                }
            }
        }

        // Demote slots whose members no longer advance consistently.
        for (s, list) in &phis {
            if list.windows(2).any(|w| w[0] != w[1]) {
                demote.insert(*s);
            }
        }
        for s in demote {
            let members: Vec<Qty> =
                slots.assign.iter().filter(|(_, m)| m.slot == s).map(|(q, _)| *q).collect();
            phis.remove(&s);
            for q in members {
                let ns = slots.kinds.len() as u32;
                let id = VarId::Slot { block: b as u32, slot: ns };
                slots.kinds.push(SlotKind::Hull);
                slots.phi.push(BTreeMap::new());
                let cur_rng = match merged.get_q(q).form() {
                    Some(f) => (self.lb(f, &merged.refine), self.ub(f, &merged.refine)),
                    None => (None, None),
                };
                let inc_rng = match inc.get_q(q).form() {
                    Some(f) => (self.lb(f, &inc.refine), self.ub(f, &inc.refine)),
                    None => (None, None),
                };
                let mut info = VarInfo::slot();
                info.unit_step = false;
                info.lo = opt_min(cur_rng.0, inc_rng.0)
                    .filter(|_| cur_rng.0.is_some() && inc_rng.0.is_some());
                info.hi = opt_max(cur_rng.1, inc_rng.1)
                    .filter(|_| cur_rng.1.is_some() && inc_rng.1.is_some());
                info.base = (info.lo, info.hi);
                if self.debug {
                    self.log.push(format!("demote b{b} {q:?} -> {id:?} {info:?}"));
                }
                self.vars.insert(id, info);
                self.dirty = true;
                slots.assign.insert(q, Member { slot: ns, coef: 1, first: Form::konst(0) });
                merged.set_q(q, Val::F(Form::var(id)));
            }
        }

        // Apply consistent advances.
        for (s, list) in phis {
            let phi = list[0].clone();
            let id = VarId::Slot { block: b as u32, slot: s };
            let kind = slots.kinds[s as usize];
            let svar = Form::var(id);
            let zero = Form::konst(0);
            if (kind == SlotKind::Counter && phi != zero && phi != svar && phi != svar.addc(1))
                || kind == SlotKind::Hull
            {
                if let Some(info) = self.vars.get_mut(&id) {
                    if info.unit_step {
                        info.unit_step = false;
                        self.dirty = true;
                        if self.debug {
                            self.log.push(format!("unit_step off {id:?}"));
                        }
                    }
                }
            }
            // Counters keep the gcd of their advance generators (hulls
            // start from arbitrary creation values, so no residue claim).
            if kind == SlotKind::Counter {
                let g = self.edge_step(id, &phi);
                if let Some(info) = self.vars.get_mut(&id) {
                    let ns = gcd(info.step, g);
                    if ns != info.step {
                        info.step = ns;
                        self.dirty = true;
                        if self.debug {
                            self.log.push(format!("step {id:?} -> {ns}"));
                        }
                    }
                }
            }
            let lo = self.lb(&phi, &inc.refine);
            let hi = self.ub(&phi, &inc.refine);
            let leap = self.leap_rng(id, &phi, &inc.refine);
            // An identity advance (s := s) contributes no values beyond the
            // variable's own range; a zero φ still does for hulls (arrival
            // value 0), so only identity is excluded from narrowing.
            self.widen(id, lo, hi, leap, phi != svar);
            if kind == SlotKind::Counter {
                let edges = &mut slots.phi[s as usize];
                let pk = pred as u32;
                if phi == zero || phi == svar {
                    if edges.remove(&pk).is_some() {
                        self.dirty = true;
                        if self.debug {
                            self.log.push(format!("phi b{b} s{s} pred{pred}: cleared"));
                        }
                    }
                } else if edges.get(&pk) != Some(&phi) {
                    if self.debug {
                        self.log.push(format!(
                            "phi b{b} s{s} pred{pred}: {:?} -> {phi:?}",
                            edges.get(&pk)
                        ));
                    }
                    edges.insert(pk, phi);
                    self.dirty = true;
                }
            }
        }

        // Group newly diverging quantities by their primitive direction.
        let mut groups: BTreeMap<Form, Vec<(Qty, Form, i64)>> = BTreeMap::new();
        for (q, first, delta) in newly {
            match normalize(&delta) {
                Some((prim, content)) => {
                    groups.entry(prim).or_default().push((q, first, content));
                }
                None => {
                    slots.top.insert(q);
                    slots.assign.remove(&q);
                    merged.set_q(q, Val::Top);
                }
            }
        }
        for (prim, members) in groups {
            // Factor the gcd of the member contents out of the
            // coefficients: a first iteration that advanced by constants
            // (ptr += 64·8, i += 64) must still leave the *unit* relation
            // (coef 8 vs 1) in the coefficients, or a later symbolic
            // advance (`i += vl`) would fail the φ division and demote.
            let gstar = members.iter().fold(0i64, |g, &(_, _, c)| gcd(g, c));
            let prim = prim.scale(gstar);
            let s = slots.kinds.len() as u32;
            let id = VarId::Slot { block: b as u32, slot: s };
            slots.kinds.push(SlotKind::Counter);
            let mut info = VarInfo::slot();
            info.unit_step = prim == Form::konst(1);
            info.step = self.edge_step(id, &prim).max(1);
            if self.debug {
                self.log.push(format!("new slot b{b} {id:?} prim={prim:?}"));
            }
            self.vars.insert(id, info);
            self.dirty = true;
            let lo = self.lb(&prim, &inc.refine);
            let hi = self.ub(&prim, &inc.refine);
            let leap = self.leap_rng(id, &prim, &inc.refine);
            self.widen(id, lo, hi, leap, true);
            slots.phi.push(BTreeMap::from([(pred as u32, prim)]));
            for (q, first, content) in members {
                let coef = content / gstar;
                let head = first.add(&Form::var(id).scale(coef));
                slots.assign.insert(q, Member { slot: s, coef, first });
                merged.set_q(q, Val::F(head));
            }
        }

        // Vector registers: hull.
        for r in 0..32 {
            merged.v[r] = vjoin(self, &merged.v[r], &inc.v[r], &merged.refine, &inc.refine);
        }
        if merged.mvl != inc.mvl {
            merged.mvl = None;
        }

        // Refinements must hold on every incoming path: keep common keys
        // with the weaker bound.
        let mut refine = Refine::new();
        for (k, &(lo1, hi1)) in &merged.refine {
            if let Some(&(lo2, hi2)) = inc.refine.get(k) {
                let lo = match (lo1, lo2) {
                    (Some(a), Some(b2)) => Some(a.min(b2)),
                    _ => None,
                };
                let hi = match (hi1, hi2) {
                    (Some(a), Some(b2)) => Some(a.max(b2)),
                    _ => None,
                };
                if lo.is_some() || hi.is_some() {
                    refine.insert(*k, (lo, hi));
                }
            }
        }
        merged.refine = refine;

        self.joins.insert(b, slots);
        if merged != cur {
            self.states[b] = Some(merged);
            true
        } else {
            false
        }
    }

    // ---- edge refinement ----------------------------------------------

    fn refine_edge(&self, st: &St, b: usize, cond: Option<bool>, target: usize) -> Option<St> {
        let Some(taken) = cond else { return Some(st.clone()) };
        let bi = self.cfg.blocks[b].end - 1;
        let inst = &self.cfg.insts[bi];
        let v1 = self.get_x(st, inst.rs1);
        let v2 = self.get_x(st, inst.rs2);
        let mut st = st.clone();

        // A comparison result tested against zero recovers the original
        // relation.
        let cmp_zero = |a: &Val, bv: &Val| -> Option<Form> {
            match (a, bv) {
                (Val::Cmp(d), Val::F(f)) if f.is_const() == Some(0) => Some(d.clone()),
                _ => None,
            }
        };

        enum C {
            Ge(Form),
            Ne(Form),
        }
        let mut cs: Vec<C> = Vec::new();
        let diff = match (v1.form(), v2.form()) {
            (Some(a), Some(bf)) => Some(a.sub(bf)),
            _ => None,
        };
        let unsigned_ok = |a: &Val, bv: &Val| -> bool {
            matches!((a.form().and_then(|f| self.lb(f, &st.refine)),
                      bv.form().and_then(|f| self.lb(f, &st.refine))),
                     (Some(x), Some(y)) if x >= 0 && y >= 0)
        };
        match inst.op {
            Op::Beq | Op::Bne => {
                let d = cmp_zero(&v1, &v2).map(|d| {
                    // cmp != 0  <=>  d < 0
                    (d, true)
                });
                let (d, via_cmp) = match d {
                    Some((d, v)) => (Some(d), v),
                    None => (diff.clone(), false),
                };
                if let Some(d) = d {
                    let eq_means_ge = via_cmp; // cmp == 0 <=> d >= 0
                    let truthy = inst.op == Op::Bne;
                    // taken(bne) / fall(beq): the operands differ (cmp: d<0)
                    // taken(beq) / fall(bne): the operands are equal (cmp: d>=0)
                    let differ_edge = taken == truthy;
                    if via_cmp {
                        if differ_edge {
                            cs.push(C::Ge(d.neg().addc(-1))); // d < 0
                        } else {
                            cs.push(C::Ge(d)); // d >= 0
                        }
                    } else if differ_edge {
                        cs.push(C::Ne(d));
                    } else {
                        cs.push(C::Ge(d.clone()));
                        cs.push(C::Ge(d.neg()));
                    }
                    let _ = eq_means_ge;
                }
            }
            Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu => {
                let signed = matches!(inst.op, Op::Blt | Op::Bge);
                if let Some(d) = diff {
                    if signed || unsigned_ok(&v1, &v2) {
                        let lt_edge = taken == matches!(inst.op, Op::Blt | Op::Bltu);
                        if lt_edge {
                            cs.push(C::Ge(d.neg().addc(-1))); // d < 0
                        } else {
                            cs.push(C::Ge(d)); // d >= 0
                        }
                    }
                }
            }
            _ => {}
        }

        for c in cs {
            match c {
                C::Ge(f) => {
                    if !self.apply_ge(&mut st, &f) {
                        return None;
                    }
                }
                C::Ne(f) => {
                    if !self.apply_ne(&mut st, &f, target) {
                        return None;
                    }
                }
            }
        }
        Some(st)
    }

    /// Constrain the state with `f >= 0`; false means the edge is dead.
    fn apply_ge(&self, st: &mut St, f: &Form) -> bool {
        if let Some(u) = self.ub(f, &st.refine) {
            if u < 0 {
                return false;
            }
        }
        for &(v, k) in &f.t {
            let rest = f.subst(v, &Form::konst(0));
            let Some(ru) = self.ub(&rest, &st.refine) else { continue };
            let entry = st.refine.entry(v.id).or_insert((None, None));
            if k > 0 {
                let lo = div_ceil(-ru, k);
                entry.0 = Some(entry.0.map_or(lo, |old| old.max(lo)));
            } else {
                let hi = div_floor(ru, -k);
                entry.1 = Some(entry.1.map_or(hi, |old| old.min(hi)));
            }
            if let (Some(l), Some(h)) = *entry {
                if l > h {
                    return false;
                }
            }
        }
        true
    }

    /// Constrain the state with `f != 0`; false means the edge is dead.
    fn apply_ne(&self, st: &mut St, f: &Form, target: usize) -> bool {
        if f.is_const() == Some(0) {
            return false;
        }
        for &(v, k) in &f.t {
            if k.abs() != 1 {
                continue;
            }
            let rest = f.subst(v, &Form::konst(0));
            let Some(r) = rest.is_const() else { continue };
            let v0 = -r * k; // k·v + r = 0  =>  v = -r/k
            let env = self.env(&st.refine);
            let (lo, hi) = env.rng(v);
            let entry_needed = lo == Some(v0) || hi == Some(v0);
            if entry_needed {
                let entry = st.refine.entry(v.id).or_insert((None, None));
                if lo == Some(v0) {
                    entry.0 = Some(v0 + 1);
                }
                if hi == Some(v0) {
                    entry.1 = Some(entry.1.map_or(v0 - 1, |old| old.min(v0 - 1)));
                }
                if let (Some(l), Some(h)) = *entry {
                    if l > h {
                        return false;
                    }
                }
                continue;
            }
            // Unit-step rule: on the backedge that re-enters the variable's
            // own join, a unit-stepping counter tested every iteration
            // cannot skip its exit value v0.
            if let VarId::Slot { block, .. } = v.id {
                if block as usize == target {
                    let unit = self.vars.get(&v.id).is_some_and(|i| i.unit_step);
                    if unit {
                        if let Some(l) = lo {
                            if l >= 0 && l <= v0 {
                                let entry = st.refine.entry(v.id).or_insert((None, None));
                                entry.1 = Some(entry.1.map_or(v0 - 1, |old| old.min(v0 - 1)));
                                if let (Some(l2), Some(h2)) = *entry {
                                    if l2 > h2 {
                                        return false;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        true
    }

    // ---- transfer ------------------------------------------------------

    fn get_x(&self, st: &St, r: u8) -> Val {
        if r == 0 {
            Val::konst(0)
        } else {
            st.x[r as usize].clone()
        }
    }

    fn transfer_block(&mut self, b: usize, st: &mut St, sink: &mut Option<&mut Vec<Access>>) {
        let (start, end) = (self.cfg.blocks[b].start, self.cfg.blocks[b].end);
        for i in start..end {
            self.transfer_inst(i, st, sink);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn transfer_inst(&mut self, sidx: usize, st: &mut St, sink: &mut Option<&mut Vec<Access>>) {
        let inst = self.cfg.insts[sidx];
        let (op, rd, rs1, rs2) = (inst.op, inst.rd, inst.rs1, inst.rs2);
        let imm = inst.imm as i64;
        let v1 = self.get_x(st, rs1);
        let v2 = self.get_x(st, rs2);
        let f1 = v1.form().cloned();
        let f2 = v2.form().cloned();

        let set = |st: &mut St, r: u8, v: Val| {
            if r != 0 {
                st.x[r as usize] = v;
            }
        };

        macro_rules! rec {
            ($write:expr, $esize:expr, $addr:expr) => {
                rec!($write, $esize, $addr, (None, None))
            };
            ($write:expr, $esize:expr, $addr:expr, $val:expr) => {
                if let Some(out) = sink.as_deref_mut() {
                    out.push(Access {
                        sidx,
                        write: $write,
                        esize: $esize,
                        addr: $addr,
                        val: $val,
                        epoch: st.epoch.clone(),
                        refine: st.refine.clone(),
                    });
                }
            };
        }

        match op {
            Op::Nop | Op::Region | Op::Halt => {}
            Op::Barrier => st.epoch = st.epoch.addc(1),
            Op::Tid => set(st, rd, Val::konst(self.tid as i64)),
            Op::Nthr => set(st, rd, Val::konst(self.nthr as i64)),
            Op::VltCfg => {
                if let Some(t) = v1.is_const() {
                    if let Some(h) = u64::try_from(t).ok().and_then(vlt_isa::vltcfg::unpack) {
                        let mvl = vlt_isa::vltcfg::effective_mvl(MAX_VL, h) as i64;
                        st.mvl = Some(mvl);
                        st.vl = match st.vl.is_const() {
                            Some(c) => Val::konst(c.min(mvl)),
                            None => Val::Top,
                        };
                    }
                } else {
                    st.mvl = None;
                    st.vl = Val::Top;
                }
            }
            Op::SetVl => {
                let clamped = match (v1.is_const(), st.mvl) {
                    (Some(req), Some(mvl)) if req >= 1 => Some(req.min(mvl)),
                    _ => None,
                };
                st.vl = match clamped {
                    Some(c) => Val::konst(c),
                    None => {
                        let id = VarId::Vl(sidx as u32);
                        let caps = f1.clone().map(|f| vec![f]).unwrap_or_default();
                        let info = VarInfo {
                            lo: Some(1),
                            hi: st.mvl,
                            caps,
                            floors: Vec::new(),
                            lo_grow: 0,
                            hi_grow: 0,
                            base: (None, None),
                            step: 1,
                            unit_step: false,
                            origin: Origin::Vl,
                        };
                        Val::F(self.set_derived(id, info))
                    }
                };
                set(st, rd, st.vl.clone());
            }
            Op::GetVl => set(st, rd, st.vl.clone()),

            Op::Add => set(st, rd, binf(&f1, &f2, Form::add)),
            Op::Sub => {
                if inst.is_zero_idiom() {
                    set(st, rd, Val::konst(0));
                } else {
                    set(st, rd, binf(&f1, &f2, Form::sub));
                }
            }
            Op::Xor => {
                if inst.is_zero_idiom() {
                    set(st, rd, Val::konst(0));
                } else {
                    set(st, rd, cfold(&v1, &v2, |a, b| (a as u64 ^ b as u64) as i64));
                }
            }
            Op::Addi => set(st, rd, f1.map_or(Val::Top, |f| Val::F(f.addc(imm)))),
            Op::Lui => set(st, rd, Val::konst(imm << 13)),
            Op::Mul => {
                let v = match (v1.is_const(), v2.is_const()) {
                    (Some(a), Some(b)) => Val::konst(a.wrapping_mul(b)),
                    (Some(k), None) => scalef(&f2, k),
                    (None, Some(k)) => scalef(&f1, k),
                    _ => Val::Top,
                };
                set(st, rd, v);
            }
            Op::Div => {
                let v = match (v1.is_const(), v2.is_const()) {
                    (Some(a), Some(b)) => {
                        Val::konst(if b == 0 { u64::MAX as i64 } else { a.wrapping_div(b) })
                    }
                    _ => Val::Top,
                };
                set(st, rd, v);
            }
            Op::Rem => {
                let v = match (v1.is_const(), v2.is_const()) {
                    (Some(a), Some(b)) => Val::konst(if b == 0 { a } else { a.wrapping_rem(b) }),
                    _ => Val::Top,
                };
                set(st, rd, v);
            }
            Op::And => {
                let v = match (v1.is_const(), v2.is_const()) {
                    (Some(a), Some(b)) => Val::konst((a as u64 & b as u64) as i64),
                    // Masking with a known non-negative value bounds the
                    // result to `[0, mask]` whatever the other operand is
                    // (hash-table index computations land here).
                    (Some(m), None) | (None, Some(m)) if m >= 0 => {
                        let id = VarId::Gen(sidx as u32);
                        let info = VarInfo {
                            lo: Some(0),
                            hi: Some(m),
                            caps: Vec::new(),
                            floors: Vec::new(),
                            lo_grow: 0,
                            hi_grow: 0,
                            base: (None, None),
                            step: 1,
                            unit_step: false,
                            origin: Origin::Andi,
                        };
                        Val::F(self.set_derived(id, info))
                    }
                    _ => Val::Top,
                };
                set(st, rd, v);
            }
            Op::Or => set(st, rd, cfold(&v1, &v2, |a, b| (a as u64 | b as u64) as i64)),
            Op::Sll => {
                let v = match (v1.is_const(), v2.is_const()) {
                    (Some(a), Some(b)) => Val::konst(((a as u64) << (b as u64 & 63)) as i64),
                    _ => Val::Top,
                };
                set(st, rd, v);
            }
            Op::Srl => set(st, rd, cfold(&v1, &v2, |a, b| ((a as u64) >> (b as u64 & 63)) as i64)),
            Op::Sra => set(st, rd, cfold(&v1, &v2, |a, b| a >> (b as u64 & 63))),
            Op::Slt => set(st, rd, binf(&f1, &f2, Form::sub).form().map_or(Val::Top, cmp_val)),
            Op::Sltu => {
                let ok = matches!(
                    (f1.as_ref().and_then(|f| self.lb(f, &st.refine)),
                     f2.as_ref().and_then(|f| self.lb(f, &st.refine))),
                    (Some(a), Some(b)) if a >= 0 && b >= 0
                );
                let v = if ok {
                    binf(&f1, &f2, Form::sub).form().map_or(Val::Top, cmp_val)
                } else {
                    Val::Top
                };
                set(st, rd, v);
            }
            Op::Andi => {
                let v = match v1.is_const() {
                    Some(a) => Val::konst((a as u64 & imm as u64) as i64),
                    None if imm >= 0 => {
                        let id = VarId::Gen(sidx as u32);
                        let info = VarInfo {
                            lo: Some(0),
                            hi: Some(imm),
                            caps: Vec::new(),
                            floors: Vec::new(),
                            lo_grow: 0,
                            hi_grow: 0,
                            base: (None, None),
                            step: 1,
                            unit_step: false,
                            origin: Origin::Andi,
                        };
                        Val::F(self.set_derived(id, info))
                    }
                    None => Val::Top,
                };
                set(st, rd, v);
            }
            Op::Ori => set(st, rd, ifold(&v1, imm, |a, b| (a as u64 | b as u64) as i64)),
            Op::Xori => set(st, rd, ifold(&v1, imm, |a, b| (a as u64 ^ b as u64) as i64)),
            Op::Slli => {
                let sh = imm as u64 & 63;
                let v = if sh < 40 {
                    scalef(&f1, 1i64 << sh)
                } else {
                    ifold(&v1, imm, |a, b| ((a as u64) << (b as u64 & 63)) as i64)
                };
                set(st, rd, v);
            }
            Op::Srli => set(st, rd, ifold(&v1, imm, |a, b| ((a as u64) >> (b as u64 & 63)) as i64)),
            Op::Srai => set(st, rd, ifold(&v1, imm, |a, b| a >> (b as u64 & 63))),
            Op::Slti => set(st, rd, f1.map_or(Val::Top, |f| cmp_val(&f.addc(-imm)))),

            Op::Ld | Op::Lw | Op::Lwu | Op::Lb | Op::Lbu | Op::Fld => {
                let esize = match op {
                    Op::Ld | Op::Fld => 8,
                    Op::Lw | Op::Lwu => 4,
                    _ => 1,
                };
                let addr = f1.map(|f| f.addc(imm));
                rec!(false, esize, addr.clone());
                if op == Op::Ld {
                    let v =
                        addr.and_then(|a| self.try_fold(sidx, &a, &st.refine)).unwrap_or(Val::Top);
                    set(st, rd, v);
                } else if op != Op::Fld {
                    set(st, rd, Val::Top);
                }
            }
            Op::Sd | Op::Sw | Op::Sb | Op::Fsd => {
                let esize = match op {
                    Op::Sd | Op::Fsd => 8,
                    Op::Sw => 4,
                    _ => 1,
                };
                // Only a full-word integer store has a value hull the
                // content overlay can use: sub-word stores splice bytes
                // into dwords and FP stores aren't tracked.
                let val = if op == Op::Sd {
                    self.form_hull(&self.get_x(st, rd).form().cloned(), &st.refine)
                } else {
                    (None, None)
                };
                rec!(true, esize, f1.map(|f| f.addc(imm)), val);
            }

            Op::Vld | Op::Vst => {
                let addr = f1.map(|base| {
                    let lane = self.lane_var(sidx, st);
                    base.add(&lane.scale(8))
                });
                if op == Op::Vst {
                    let val = self.vval_hull(&st.v[rd as usize], &st.refine);
                    rec!(true, 8, addr, val);
                } else {
                    rec!(false, 8, addr.clone());
                    st.v[rd as usize] = addr
                        .and_then(|a| self.try_vfold(sidx, &a, &st.refine))
                        .unwrap_or(VVal::Top);
                }
            }
            Op::Vlds | Op::Vsts => {
                let addr = match (f1, v2.is_const()) {
                    (Some(base), Some(k)) => {
                        let lane = self.lane_var(sidx, st);
                        Some(base.add(&lane.scale(k)))
                    }
                    _ => None,
                };
                if op == Op::Vsts {
                    let val = self.vval_hull(&st.v[rd as usize], &st.refine);
                    rec!(true, 8, addr, val);
                } else {
                    rec!(false, 8, addr.clone());
                    st.v[rd as usize] = addr
                        .and_then(|a| self.try_vfold(sidx, &a, &st.refine))
                        .unwrap_or(VVal::Top);
                }
            }
            Op::Vldx | Op::Vstx => {
                let addr = match (f1, &st.v[rs2 as usize]) {
                    (Some(base), VVal::Range(lo, hi)) => {
                        let id = VarId::Lane(sidx as u32);
                        let info = VarInfo {
                            lo: self.lb(lo, &st.refine),
                            hi: self.ub(hi, &st.refine),
                            caps: vec![hi.clone()],
                            floors: vec![lo.clone()],
                            lo_grow: 0,
                            hi_grow: 0,
                            base: (None, None),
                            step: 1,
                            unit_step: false,
                            origin: Origin::Lane,
                        };
                        Some(base.add(&self.set_derived(id, info)))
                    }
                    _ => None,
                };
                if op == Op::Vstx {
                    let val = self.vval_hull(&st.v[rd as usize], &st.refine);
                    rec!(true, 8, addr, val);
                } else {
                    rec!(false, 8, addr);
                    st.v[rd as usize] = VVal::Top;
                }
            }

            Op::Vid => {
                let r = match st.vl.form() {
                    Some(vlf) => VVal::Range(Form::konst(0), vlf.addc(-1)),
                    None => VVal::Top,
                };
                st.v[rd as usize] = self.vmask(st, inst.masked, rd, r);
            }
            Op::Vsplat => {
                let r = match &v1 {
                    Val::F(f) => VVal::Range(f.clone(), f.clone()),
                    _ => VVal::Top,
                };
                st.v[rd as usize] = self.vmask(st, inst.masked, rd, r);
            }
            Op::VaddVS | Op::VsubVS => {
                let r = match (&st.v[rs1 as usize], &v2) {
                    (VVal::Range(lo, hi), Val::F(f)) => {
                        if op == Op::VaddVS {
                            VVal::Range(lo.add(f), hi.add(f))
                        } else {
                            VVal::Range(lo.sub(f), hi.sub(f))
                        }
                    }
                    _ => VVal::Top,
                };
                st.v[rd as usize] = self.vmask(st, inst.masked, rd, r);
            }
            Op::VmulVS => {
                let r = match (&st.v[rs1 as usize], v2.is_const()) {
                    (VVal::Range(lo, hi), Some(k)) if k.abs() < SCALE_LIMIT => {
                        if k >= 0 {
                            VVal::Range(lo.scale(k), hi.scale(k))
                        } else {
                            VVal::Range(hi.scale(k), lo.scale(k))
                        }
                    }
                    _ => VVal::Top,
                };
                st.v[rd as usize] = self.vmask(st, inst.masked, rd, r);
            }
            Op::VsllVS => {
                let r = match (&st.v[rs1 as usize], v2.is_const()) {
                    (VVal::Range(lo, hi), Some(sh))
                        if (0..32).contains(&sh)
                            && self.lb(lo, &st.refine).is_some_and(|l| l >= 0) =>
                    {
                        VVal::Range(lo.scale(1 << sh), hi.scale(1 << sh))
                    }
                    _ => VVal::Top,
                };
                st.v[rd as usize] = self.vmask(st, inst.masked, rd, r);
            }
            Op::VandVS => {
                // Element-wise mask with a known non-negative scalar:
                // every lane lands in `[0, mask]` regardless of the source
                // vector — this is what bounds hash-style gather indices.
                let r = match v2.is_const() {
                    Some(m) if m >= 0 => VVal::Range(Form::konst(0), Form::konst(m)),
                    _ => VVal::Top,
                };
                st.v[rd as usize] = self.vmask(st, inst.masked, rd, r);
            }
            Op::VsrlVS => {
                let r = match (&st.v[rs1 as usize], v2.is_const()) {
                    (VVal::Range(lo, hi), Some(sh)) if (0..64).contains(&sh) => {
                        // Logical shift is monotone on non-negative
                        // values; bound through the evaluated hull.
                        match (self.lb(lo, &st.refine), self.ub(hi, &st.refine)) {
                            (Some(l), Some(h)) if l >= 0 && l <= h => {
                                VVal::Range(Form::konst(l >> sh), Form::konst(h >> sh))
                            }
                            _ => VVal::Top,
                        }
                    }
                    _ => VVal::Top,
                };
                st.v[rd as usize] = self.vmask(st, inst.masked, rd, r);
            }
            Op::VaddVV | Op::VsubVV => {
                if inst.is_zero_idiom() {
                    let z = VVal::Range(Form::konst(0), Form::konst(0));
                    st.v[rd as usize] = self.vmask(st, inst.masked, rd, z);
                } else {
                    let r = match (&st.v[rs1 as usize], &st.v[rs2 as usize]) {
                        (VVal::Range(l1, h1), VVal::Range(l2, h2)) => {
                            if op == Op::VaddVV {
                                VVal::Range(l1.add(l2), h1.add(h2))
                            } else {
                                VVal::Range(l1.sub(h2), h1.sub(l2))
                            }
                        }
                        _ => VVal::Top,
                    };
                    st.v[rd as usize] = self.vmask(st, inst.masked, rd, r);
                }
            }
            Op::VxorVV if inst.is_zero_idiom() => {
                let z = VVal::Range(Form::konst(0), Form::konst(0));
                st.v[rd as usize] = self.vmask(st, inst.masked, rd, z);
            }
            Op::Vmv => {
                let r = st.v[rs1 as usize].clone();
                st.v[rd as usize] = self.vmask(st, inst.masked, rd, r);
            }
            Op::Vmerge => {
                let r = vjoin_owned(
                    self,
                    st.v[rs1 as usize].clone(),
                    st.v[rs2 as usize].clone(),
                    &st.refine,
                );
                st.v[rd as usize] = r;
            }

            _ => {
                // Anything unmodeled: clobber its definitions soundly.
                let (defs, _) = inst.defs_uses();
                for d in defs {
                    match d {
                        vlt_isa::RegRef::I(r) => set(st, r, Val::Top),
                        vlt_isa::RegRef::V(r) => {
                            st.v[r as usize] = self.vmask(st, inst.masked, r, VVal::Top);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// Masked vector writes merge with the old destination value.
    fn vmask(&self, st: &St, masked: bool, rd: u8, new: VVal) -> VVal {
        if !masked {
            return new;
        }
        vjoin_owned(self, new, st.v[rd as usize].clone(), &st.refine)
    }

    /// The per-access element-index variable: `0 ≤ lane ≤ vl−1 ≤ mvl−1`.
    fn lane_var(&mut self, sidx: usize, st: &St) -> Form {
        let id = VarId::Lane(sidx as u32);
        let (hi, caps) = match (&st.vl, st.mvl) {
            (Val::F(f), mvl) => match f.is_const() {
                Some(c) => (Some(c - 1), Vec::new()),
                None => (mvl.map(|m| m - 1), vec![f.addc(-1)]),
            },
            (_, mvl) => (mvl.map(|m| m - 1), Vec::new()),
        };
        let info = VarInfo {
            lo: Some(0),
            hi,
            caps,
            floors: Vec::new(),
            lo_grow: 0,
            hi_grow: 0,
            base: (None, None),
            step: 1,
            unit_step: false,
            origin: Origin::Lane,
        };
        self.set_derived(id, info)
    }

    /// Hull of a scalar form under the current bounds.
    fn form_hull(&self, f: &Option<Form>, refine: &Refine) -> Rng {
        match f {
            Some(f) => (self.lb(f, refine), self.ub(f, refine)),
            None => (None, None),
        }
    }

    /// Hull of a vector register's per-lane values.
    fn vval_hull(&self, v: &VVal, refine: &Refine) -> Rng {
        match v {
            VVal::Range(lo, hi) => (self.lb(lo, refine), self.ub(hi, refine)),
            VVal::Top => (None, None),
        }
    }

    /// Join the store-value overlay into an image-derived value hull for
    /// a fold over `[lo, hi + 8)`. `None` when an unboundable store may
    /// touch the span (the fold must fail); the bool reports whether the
    /// hull was widened by overlay ranges (such a fold is sound but never
    /// synchronized across threads).
    fn overlay_join(&self, lo: i64, hi: i64, vmin: i64, vmax: i64) -> Option<(i64, i64, bool)> {
        match self.overlay.query(lo, hi + 8) {
            Err(()) => None,
            Ok(None) => Some((vmin, vmax, false)),
            Ok(Some((wlo, whi))) => Some((vmin.min(wlo), vmax.max(whi), true)),
        }
    }

    fn register_fold(&mut self, sidx: usize, fold: Fold) {
        match self.folds.get(&sidx) {
            Some(old) if *old == fold => {}
            _ => {
                if self.debug {
                    self.log.push(format!("fold #{sidx}: {fold:?}"));
                }
                self.folds.insert(sidx, fold);
                self.dirty = true;
            }
        }
    }

    /// Fold an 8-byte load whose address enumerates a bounded window of
    /// initialized data words. Narrow windows are enumerated exactly
    /// (honoring the address stride); wider ones — up to the vector-fold
    /// span — use the chunked image summaries, whose whole-window hull is
    /// a sound over-approximation of any stride pattern. Stores that may
    /// touch the span widen the hull with their value bounds (via the
    /// overlay `races` iterates to a fixpoint); an unboundable
    /// intersecting store makes the fold fail.
    fn try_fold(&mut self, sidx: usize, addr: &Form, refine: &Refine) -> Option<Val> {
        let lo = self.lb(addr, refine)?;
        let hi = self.ub(addr, refine)?;
        if hi < lo || hi - lo > VFOLD_SPAN {
            return None;
        }
        let step = match addr.gcd_terms() {
            0 => 8, // constant address: single candidate
            g => g,
        };
        if step < 8 || step % 8 != 0 || lo % 8 != 0 {
            return None;
        }
        let (vmin, vmax) = if hi - lo <= FOLD_SPAN {
            let base = DATA_BASE as i64;
            let len = self.data.len() as i64;
            let (mut vmin, mut vmax) = (i64::MAX, i64::MIN);
            let mut a = lo;
            while a <= hi {
                if a < base || a + 8 > base + len {
                    return None;
                }
                let off = (a - base) as usize;
                let bytes: [u8; 8] = self.data[off..off + 8].try_into().ok()?;
                let v = u64::from_le_bytes(bytes);
                let v = i64::try_from(v).ok()?;
                vmin = vmin.min(v);
                vmax = vmax.max(v);
                a += step;
            }
            (vmin, vmax)
        } else {
            let image = self.image.get_or_insert_with(|| crate::content::DataHull::new(self.data));
            image.hull(lo, hi)?
        };
        let (vmin, vmax, widened) = self.overlay_join(lo, hi, vmin, vmax)?;
        self.register_fold(sidx, Fold { addr: addr.clone(), span: (lo, hi + 8), widened });
        let id = VarId::Gen(sidx as u32);
        let info = VarInfo {
            lo: Some(vmin),
            hi: Some(vmax),
            caps: Vec::new(),
            floors: Vec::new(),
            lo_grow: 0,
            hi_grow: 0,
            base: (None, None),
            step: 1,
            unit_step: false,
            origin: Origin::Fold,
        };
        Some(Val::F(self.set_derived(id, info)))
    }

    /// Fold a unit/strided vector load over a bounded, 8-aligned window
    /// of the data image into a per-lane value hull. Wider windows than
    /// the scalar fold allows are fine: the chunked image summaries keep
    /// the query cheap, and a whole-window hull (ignoring the stride
    /// pattern) is a sound over-approximation. This is the content step
    /// that turns a loaded index vector into bounded gather/scatter
    /// footprints downstream.
    fn try_vfold(&mut self, sidx: usize, addr: &Form, refine: &Refine) -> Option<VVal> {
        let lo = self.lb(addr, refine)?;
        let hi = self.ub(addr, refine)?;
        if hi < lo || hi - lo > VFOLD_SPAN {
            return None;
        }
        let step = match addr.gcd_terms() {
            0 => 8,
            g => g,
        };
        if step < 8 || step % 8 != 0 || lo % 8 != 0 {
            return None;
        }
        let image = self.image.get_or_insert_with(|| crate::content::DataHull::new(self.data));
        let (vmin, vmax) = image.hull(lo, hi)?;
        let (vmin, vmax, widened) = self.overlay_join(lo, hi, vmin, vmax)?;
        self.register_fold(sidx, Fold { addr: addr.clone(), span: (lo, hi + 8), widened });
        Some(VVal::Range(Form::konst(vmin), Form::konst(vmax)))
    }

    // ---- output --------------------------------------------------------

    fn emit(&mut self) -> Vec<Access> {
        let mut out = Vec::new();
        for b in 0..self.cfg.blocks.len() {
            let Some(st0) = self.states[b].clone() else { continue };
            let mut st = st0;
            let mut sink = Some(&mut out);
            self.transfer_block(b, &mut st, &mut sink);
        }
        out.sort_by_key(|a| a.sidx);
        out
    }

    /// Fallback when the fixpoint failed: every reachable memory
    /// instruction becomes an unbounded access at an unknown epoch.
    fn collect_unknown(&self) -> Vec<Access> {
        let reach = self.cfg.reachable();
        let mut out = Vec::new();
        for (b, block) in self.cfg.blocks.iter().enumerate() {
            if !reach[b] {
                continue;
            }
            for i in block.start..block.end {
                if self.cfg.insts[i].op.class().is_mem() {
                    let write = matches!(
                        self.cfg.insts[i].op.class(),
                        vlt_isa::OpClass::Store | vlt_isa::OpClass::VStore
                    );
                    out.push(Access {
                        sidx: i,
                        write,
                        esize: 8,
                        addr: None,
                        val: (None, None),
                        epoch: Form::var(VarId::Gen(u32::MAX)),
                        refine: Refine::new(),
                    });
                }
            }
        }
        out
    }
}

fn binf(a: &Option<Form>, b: &Option<Form>, f: impl Fn(&Form, &Form) -> Form) -> Val {
    match (a, b) {
        (Some(x), Some(y)) => Val::F(f(x, y)),
        _ => Val::Top,
    }
}

fn scalef(f: &Option<Form>, k: i64) -> Val {
    match f {
        Some(x) if k.abs() < SCALE_LIMIT => Val::F(x.scale(k)),
        _ => Val::Top,
    }
}

fn cfold(a: &Val, b: &Val, f: impl Fn(i64, i64) -> i64) -> Val {
    match (a.is_const(), b.is_const()) {
        (Some(x), Some(y)) => Val::konst(f(x, y)),
        _ => Val::Top,
    }
}

fn ifold(a: &Val, imm: i64, f: impl Fn(i64, i64) -> i64) -> Val {
    match a.is_const() {
        Some(x) => Val::konst(f(x, imm)),
        _ => Val::Top,
    }
}

fn cmp_val(d: &Form) -> Val {
    match d.is_const() {
        Some(c) => Val::konst((c < 0) as i64),
        None => Val::Cmp(d.clone()),
    }
}

/// Normalize a join delta to `(primitive direction, signed content)` such
/// that `delta = content · prim` and `prim`'s leading entry is positive.
fn normalize(delta: &Form) -> Option<(Form, i64)> {
    let mut g = delta.c.unsigned_abs() as i64;
    for &(_, k) in &delta.t {
        g = gcd(g, k.unsigned_abs() as i64);
    }
    if g == 0 {
        return None; // delta == 0: caller should not have diverged
    }
    let leading = delta.t.first().map(|&(_, k)| k).unwrap_or(delta.c);
    let content = if leading < 0 { -g } else { g };
    Some((delta.divide(content)?, content))
}

fn vjoin(r: &Runner<'_>, a: &VVal, b: &VVal, ra: &Refine, rb: &Refine) -> VVal {
    match (a, b) {
        (x, y) if x == y => x.clone(),
        (VVal::Range(l1, h1), VVal::Range(l2, h2)) => {
            let lo = pick(r, l1, l2, ra, rb, false);
            let hi = pick(r, h1, h2, ra, rb, true);
            match (lo, hi) {
                (Some(lo), Some(hi)) => VVal::Range(lo, hi),
                _ => VVal::Top,
            }
        }
        _ => VVal::Top,
    }
}

fn vjoin_owned(r: &Runner<'_>, a: VVal, b: VVal, refine: &Refine) -> VVal {
    vjoin(r, &a, &b, refine, refine)
}

/// Pick the smaller (or larger) of two bound forms when comparable.
fn pick(
    r: &Runner<'_>,
    f1: &Form,
    f2: &Form,
    r1: &Refine,
    r2: &Refine,
    upper: bool,
) -> Option<Form> {
    if let Some(d) = f1.sub(f2).is_const() {
        let keep_first = if upper { d >= 0 } else { d <= 0 };
        return Some(if keep_first { f1.clone() } else { f2.clone() });
    }
    if upper {
        let u1 = r.ub(f1, r1)?;
        let u2 = r.ub(f2, r2)?;
        Some(Form::konst(u1.max(u2)))
    } else {
        let l1 = r.lb(f1, r1)?;
        let l2 = r.lb(f2, r2)?;
        Some(Form::konst(l1.min(l2)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlt_isa::asm::assemble;

    fn run_tid(src: &str, tid: usize, nthr: usize) -> TidRun {
        run_tid_overlay(src, tid, nthr, &crate::content::Overlay::default())
    }

    fn run_tid_overlay(
        src: &str,
        tid: usize,
        nthr: usize,
        overlay: &crate::content::Overlay,
    ) -> TidRun {
        let prog = assemble(src).unwrap();
        let insts: Vec<_> = prog.text.iter().map(|&w| vlt_isa::decode(w).unwrap()).collect();
        let cfg = Cfg::build(insts);
        analyze_tid(&cfg, &prog.data, tid, nthr, overlay)
    }

    fn bounds(run: &TidRun, acc: &Access) -> (Option<i64>, Option<i64>) {
        let f = acc.addr.as_ref().unwrap();
        let env = RunEnv { vars: &run.vars, refine: &acc.refine, skip_global: None };
        (clb(&env, f, &mut Vec::new()), cub(&env, f, &mut Vec::new()))
    }

    #[test]
    fn form_algebra() {
        let a = Form::var(VarId::Gen(1));
        let b = a.scale(3).addc(5);
        assert_eq!(b.sub(&b).is_const(), Some(0));
        assert_eq!(b.divide(3), None);
        assert_eq!(b.addc(1).divide(3).unwrap(), a.addc(2));
        assert_eq!(b.subst(Var::local(VarId::Gen(1)), &Form::konst(2)).is_const(), Some(11));
    }

    #[test]
    fn tid_is_concrete() {
        let run = run_tid("tid x1\nli x2, 8\nmul x3, x1, x2\nsd x0, 0(x3)\nhalt\n", 3, 4);
        assert!(!run.failed);
        let acc = &run.accesses[0];
        let f = acc.addr.as_ref().unwrap();
        assert_eq!(f.is_const(), Some(24));
    }

    #[test]
    fn counted_loop_is_bounded() {
        // for (i = 0; i != 10; ) { store a[i]; i++ }  via countdown
        let src = "
            li x5, 10
            li x6, 0x100000
        loop:
            sd x0, 0(x6)
            addi x6, x6, 8
            addi x5, x5, -1
            bnez x5, loop
            halt
        ";
        let run = run_tid(src, 0, 1);
        assert!(!run.failed);
        let acc = run.accesses.iter().find(|a| a.write).unwrap();
        let f = acc.addr.as_ref().unwrap();
        let env = RunEnv { vars: &run.vars, refine: &acc.refine, skip_global: None };
        let hi = cub(&env, f, &mut Vec::new()).unwrap();
        let lo = clb(&env, f, &mut Vec::new()).unwrap();
        assert_eq!(lo, 0x100000);
        // 10 iterations: last store at base + 9*8.
        assert_eq!(hi, 0x100000 + 72);
    }

    #[test]
    fn strip_mine_footprint_cancels() {
        // Strip-mined loop over [0, 100): footprint must end at the bound,
        // not at bound + mvl.
        let src = "
            li x1, 1
            vltcfg x1
            li x13, 100
            li x14, 0
            li x6, 0x100000
        loop:
            sub x3, x13, x14
            setvl x2, x3
            vst v1, x6
            add x14, x14, x2
            slli x4, x2, 3
            add x6, x6, x4
            blt x14, x13, loop
            halt
        ";
        let run = run_tid(src, 0, 1);
        assert!(!run.failed);
        let acc = run.accesses.iter().find(|a| a.write).unwrap();
        let f = acc.addr.as_ref().unwrap();
        let env = RunEnv { vars: &run.vars, refine: &acc.refine, skip_global: None };
        let hi = cub(&env, f, &mut Vec::new()).unwrap();
        let lo = clb(&env, f, &mut Vec::new()).unwrap();
        assert_eq!(lo, 0x100000);
        // Last element is a[99] at base + 99*8.
        assert_eq!(hi, 0x100000 + 99 * 8);
    }

    #[test]
    fn vector_load_folds_bound_a_gather() {
        // A unit vld of an offsets table gives the index vector a value
        // hull from the data image, which finitely bounds the vldx
        // footprint instead of leaving it ⊤.
        let src = "
            .data
        tbl: .dword 0, 8, 16, 24, 32, 40, 48, 56
        out: .space 64
            .text
            li x1, 1
            vltcfg x1
            li x2, 8
            setvl x3, x2
            la x4, tbl
            vld v1, x4
            la x5, out
            vldx v2, x5, v1
            halt
        ";
        let run = run_tid(src, 0, 1);
        assert!(!run.failed);
        let gather = run.accesses.last().unwrap();
        let (lo, hi) = bounds(&run, gather);
        let out = DATA_BASE as i64 + 64;
        assert_eq!(lo, Some(out));
        assert_eq!(hi, Some(out + 56));
        let fold = run.folds.values().next().expect("the vld registered a fold");
        assert!(!fold.widened);
    }

    #[test]
    fn overlay_widens_scalar_folds() {
        // slot at DATA_BASE, out right behind it.
        let src = "
            .data
        slot: .dword 3
        out:  .space 128
            .text
            la x1, slot
            ld x2, 0(x1)
            la x3, out
            add x4, x3, x2
            sd x0, 0(x4)
            halt
        ";
        let slot = DATA_BASE as i64;
        let out = slot + 8;

        // No overlay: the load folds to the image value exactly.
        let run = run_tid(src, 0, 1);
        assert!(!run.failed);
        let st = run.accesses.iter().find(|a| a.write).unwrap();
        assert_eq!(bounds(&run, st), (Some(out + 3), Some(out + 3)));
        assert!(!run.folds.values().next().unwrap().widened);

        // A store of [8, 16] into the slot widens the fold (and marks it,
        // so it can never be treated as synchronized across threads).
        let ov = crate::content::Overlay {
            poisoned: false,
            ranges: vec![(slot, slot + 8, (Some(8), Some(16)))],
        };
        let run = run_tid_overlay(src, 0, 1, &ov);
        assert!(!run.failed);
        let st = run.accesses.iter().find(|a| a.write).unwrap();
        assert_eq!(bounds(&run, st), (Some(out + 3), Some(out + 16)));
        assert!(run.folds.values().next().unwrap().widened);

        // An unboundable intersecting store kills the fold: the indexed
        // store's address cannot be bounded at all.
        let ov = crate::content::Overlay {
            poisoned: false,
            ranges: vec![(slot, slot + 8, (None, Some(16)))],
        };
        let run = run_tid_overlay(src, 0, 1, &ov);
        assert!(!run.failed);
        let st = run.accesses.iter().find(|a| a.write).unwrap();
        assert!(st.addr.is_none());
        assert!(run.folds.is_empty());
    }

    #[test]
    fn stores_report_value_hulls() {
        let src = "
            li x1, 40
            sd x1, 0(x0)
            sw x1, 8(x0)
            halt
        ";
        let run = run_tid(src, 0, 1);
        let sd = &run.accesses[0];
        let sw = &run.accesses[1];
        assert_eq!(sd.val, (Some(40), Some(40)));
        assert_eq!(sw.val, (None, None), "sub-word stores have no dword hull");
    }

    #[test]
    fn mask_and_shift_bound_indices() {
        // Scalar: x & mask lands in [0, mask] even for an unknown x.
        // Vector: vand.vs bounds any vector; vsrl.vs divides a
        // non-negative hull.
        let src = "
            .data
        out: .space 1024
            .text
            li x1, 1
            vltcfg x1
            li x2, 8
            setvl x3, x2
            ld x4, 0(x30)
            li x5, 63
            and x6, x4, x5
            la x7, out
            add x8, x7, x6
            sd x0, 0(x8)
            vsplat v1, x4
            vand.vs v2, v1, x5
            vsll.vs v3, v2, x3
            vstx v4, x7, v3
            halt
        ";
        let run = run_tid(src, 0, 1);
        assert!(!run.failed);
        let out = DATA_BASE as i64;
        let scalar_store = run.accesses.iter().find(|a| a.write && a.esize == 8).unwrap();
        let (lo, hi) = bounds(&run, scalar_store);
        assert_eq!(lo, Some(out));
        assert_eq!(hi, Some(out + 63));
        let vstx = run.accesses.last().unwrap();
        assert!(vstx.write);
        let (lo, hi) = bounds(&run, vstx);
        assert_eq!(lo, Some(out));
        // vand.vs → [0, 63], vsll.vs by vl=8 → [0, 63*256].
        assert_eq!(hi, Some(out + 63 * 256));
    }

    #[test]
    fn epoch_counts_barriers_in_loops() {
        let src = "
            li x5, 4
        step:
            barrier
            sd x0, 8(x0)
            addi x5, x5, -1
            bnez x5, step
            sd x0, 16(x0)
            halt
        ";
        let run = run_tid(src, 0, 1);
        assert!(!run.failed);
        let in_loop = &run.accesses[0];
        let after = &run.accesses[1];
        // In-loop epoch is symbolic (1 + s); post-loop epoch is pinned by
        // the exit refinement to exactly 4.
        let env = RunEnv { vars: &run.vars, refine: &after.refine, skip_global: None };
        assert_eq!(clb(&env, &after.epoch, &mut Vec::new()), Some(4));
        assert_eq!(cub(&env, &after.epoch, &mut Vec::new()), Some(4));
        let env2 = RunEnv { vars: &run.vars, refine: &in_loop.refine, skip_global: None };
        assert_eq!(clb(&env2, &in_loop.epoch, &mut Vec::new()), Some(1));
        assert_eq!(cub(&env2, &in_loop.epoch, &mut Vec::new()), Some(4));
    }
}
