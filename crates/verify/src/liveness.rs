//! Backward liveness analysis for the dead-write lint.
//!
//! A write is *dead* when no path from the defining instruction reaches a
//! read of the register before the next full overwrite (or thread halt).
//! The lattice is the powerset of register slots (bitsets per file plus
//! `vl`/`vm`), joined by union; the transfer is the usual
//! `gen ∪ (out ∖ kill)` with two VLT-specific refinements:
//!
//! * **Partial defs don't kill.** `vinsert`/`vfinsert` and masked vector
//!   writes leave part of the old destination value live, so they cannot
//!   retire an earlier write (see [`Inst::is_partial_def`]).
//! * **Zero idioms don't gen.** `xor x5, x5, x5` produces zero regardless
//!   of the source, so it does not keep an earlier write of `x5` alive
//!   (see [`Inst::is_zero_idiom`]).
//!
//! The pass declines to run on programs with indirect jumps (`jr`/`jalr`):
//! the continuation of an indirect jump is statically unknown, so nothing
//! can soundly be called dead.

use vlt_isa::{Inst, Op, OpClass, RegRef};

use crate::absint::RawDiag;
use crate::cfg::{Cfg, Term};
use crate::diag::Code;

/// Live-register set: one bit per architectural slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Live {
    x: u32,
    f: u32,
    v: u32,
    vl: bool,
    vm: bool,
}

impl Live {
    fn union(self, o: Live) -> Live {
        Live {
            x: self.x | o.x,
            f: self.f | o.f,
            v: self.v | o.v,
            vl: self.vl || o.vl,
            vm: self.vm || o.vm,
        }
    }

    fn contains(&self, r: RegRef) -> bool {
        match r {
            RegRef::I(i) => self.x & (1 << i) != 0,
            RegRef::F(i) => self.f & (1 << i) != 0,
            RegRef::V(i) => self.v & (1 << i) != 0,
            RegRef::Vl => self.vl,
            RegRef::Vm => self.vm,
        }
    }

    fn set(&mut self, r: RegRef) {
        match r {
            RegRef::I(i) => self.x |= 1 << i,
            RegRef::F(i) => self.f |= 1 << i,
            RegRef::V(i) => self.v |= 1 << i,
            RegRef::Vl => self.vl = true,
            RegRef::Vm => self.vm = true,
        }
    }

    fn clear(&mut self, r: RegRef) {
        match r {
            RegRef::I(i) => self.x &= !(1 << i),
            RegRef::F(i) => self.f &= !(1 << i),
            RegRef::V(i) => self.v &= !(1 << i),
            RegRef::Vl => self.vl = false,
            RegRef::Vm => self.vm = false,
        }
    }
}

/// Backward transfer of one instruction over a live-out set.
fn step_back(inst: &Inst, live: &mut Live) {
    let (defs, uses) = inst.defs_uses();
    if !inst.is_partial_def() {
        for d in &defs {
            live.clear(*d);
        }
    }
    if !inst.is_zero_idiom() {
        for u in &uses {
            live.set(*u);
        }
    }
}

/// True if flagging this instruction's write as dead is meaningful: the
/// instruction exists *only* to produce its register results (no memory
/// traffic, no control transfer, no machine-state side effects).
fn pure_def(inst: &Inst) -> bool {
    !matches!(inst.op.class(), OpClass::Store | OpClass::VStore | OpClass::Load | OpClass::VLoad)
        && !inst.is_control()
        && !matches!(
            inst.op,
            Op::SetVl | Op::VltCfg | Op::Barrier | Op::Region | Op::Halt | Op::Nop
        )
}

/// Run the dead-write pass. Returns raw findings in text order.
pub fn dead_writes(cfg: &Cfg) -> Vec<RawDiag> {
    if cfg.has_indirect {
        return Vec::new(); // continuations unknown: nothing is provably dead
    }
    let nb = cfg.blocks.len();
    let reachable = cfg.reachable();

    // Fixpoint: live-in per block, propagated to predecessors.
    let mut live_in: Vec<Live> = vec![Live::default(); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let mut live = block_out(cfg, &live_in, b);
            for i in (cfg.blocks[b].start..cfg.blocks[b].end).rev() {
                step_back(&cfg.insts[i], &mut live);
            }
            if live != live_in[b] {
                live_in[b] = live;
                changed = true;
            }
        }
    }

    // Emission: replay each reachable block backwards and flag pure defs
    // whose every destination is dead at that point.
    let mut out: Vec<RawDiag> = Vec::new();
    for (b, _) in reachable.iter().enumerate().filter(|(_, r)| **r) {
        let mut live = block_out(cfg, &live_in, b);
        let mut found: Vec<RawDiag> = Vec::new();
        for i in (cfg.blocks[b].start..cfg.blocks[b].end).rev() {
            let inst = &cfg.insts[i];
            let (defs, _) = inst.defs_uses();
            if pure_def(inst) && !defs.is_empty() && defs.iter().all(|d| !live.contains(*d)) {
                let names: Vec<String> = defs.iter().map(|d| format!("{d}")).collect();
                found.push((
                    Code::DeadWrite,
                    i,
                    format!("{} is written but never read afterwards", names.join(", ")),
                ));
            }
            step_back(inst, &mut live);
        }
        found.reverse();
        out.extend(found);
    }
    out
}

/// The live-out set of block `b`: union of successors' live-ins. Blocks
/// ending in `halt` (or falling off the end) have empty live-out — the
/// thread is done and only memory survives.
fn block_out(cfg: &Cfg, live_in: &[Live], b: usize) -> Live {
    match cfg.blocks[b].term {
        Term::Halt | Term::OffEnd | Term::Indirect => Live::default(),
        _ => cfg.blocks[b].succs.iter().fold(Live::default(), |acc, &s| acc.union(live_in[s])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlt_isa::asm::assemble;

    fn raw(src: &str) -> Vec<RawDiag> {
        let p = assemble(src).unwrap();
        dead_writes(&Cfg::build(p.decoded()))
    }

    fn flags_idx(diags: &[RawDiag], i: usize) -> bool {
        diags.iter().any(|(c, s, _)| *c == Code::DeadWrite && *s == i)
    }

    #[test]
    fn dead_write_flagged() {
        let d = raw("li x1, 7\nli x1, 8\nsd x1, -8(sp)\nhalt\n");
        assert!(flags_idx(&d, 0), "{d:?}");
        assert!(!flags_idx(&d, 1));
    }

    #[test]
    fn store_keeps_value_live() {
        let d = raw("li x1, 7\nsd x1, -8(sp)\nhalt\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn loop_carried_value_live() {
        let d = raw("li x1, 4\nloop:\naddi x1, x1, -1\nbnez x1, loop\nhalt\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unread_result_at_halt_flagged() {
        let d = raw("li x1, 3\nadd x2, x1, x1\nhalt\n");
        assert!(flags_idx(&d, 1), "{d:?}");
    }

    #[test]
    fn masked_write_not_dead() {
        // The masked add partially overwrites v1; the vsplat stays live.
        let d = raw("li x1, 4\nsetvl x0, x1\nli x2, 5\nvsplat v1, x2\nvid v2\nvid v3\n\
             vseq.vv v2, v3\nvadd.vv v1, v2, v3, vm\nvst v1, sp\nhalt\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn indirect_disables_pass() {
        let d = raw("li x1, 7\njr x31\n");
        assert!(d.is_empty());
    }
}
