//! Structural lints over the CFG: unreachable code, fall-through past the
//! end of the text segment, wild branch targets, untracked indirect flow,
//! and SPMD convergence of `barrier`/`vltcfg`.
//!
//! The convergence check is purely structural (no path feasibility): for
//! every reachable two-way branch, a `barrier` or `vltcfg` that is
//! reachable from one successor but not the other executes on only a
//! subset of threads whenever the branch diverges across threads (e.g. on
//! `tid`). For `barrier` that is a potential deadlock — the rendezvous
//! counts *live* threads, so threads that skip it desynchronize the
//! phases; for `vltcfg` it means threads disagree about the lane
//! partition. Branches whose two sides rejoin before the instruction are
//! fine: both reachability sets contain it.

use vlt_isa::Op;

use crate::absint::RawDiag;
use crate::cfg::{Cfg, Term};
use crate::diag::Code;

/// Run the structural lints. Returns raw findings in text order.
pub fn check(cfg: &Cfg) -> Vec<RawDiag> {
    let mut out: Vec<RawDiag> = Vec::new();
    let reachable = cfg.reachable();

    // Unreachable code: one finding per unreachable block, anchored at its
    // first instruction.
    for b in &cfg.blocks {
        if !reachable[cfg.block_of[b.start]] {
            let n = b.end - b.start;
            let plural = if n == 1 { "" } else { "s" };
            out.push((
                Code::Unreachable,
                b.start,
                format!("{n} instruction{plural} not reachable from the entry point"),
            ));
        }
    }

    // Fall-through past the end of the text segment.
    for b in &cfg.blocks {
        if b.term == Term::OffEnd && reachable[cfg.block_of[b.start]] {
            out.push((
                Code::OffEnd,
                b.end - 1,
                "execution continues past the end of the text segment (no `halt`/branch) \
                 — dynamic `BadPc` fault"
                    .to_string(),
            ));
        }
    }

    // Branch/jump targets outside the text segment.
    for &(i, t) in &cfg.wild_targets {
        if reachable[cfg.block_of[i]] {
            out.push((
                Code::BadTarget,
                i,
                format!("target index {t} is outside the text segment (0..{})", cfg.insts.len()),
            ));
        }
    }

    // Indirect control flow: the analysis cannot follow it.
    for (i, inst) in cfg.insts.iter().enumerate() {
        if matches!(inst.op, Op::Jr | Op::Jalr) && reachable[cfg.block_of[i]] {
            out.push((
                Code::IndirectFlow,
                i,
                "indirect jump: successors are not statically tracked, so analysis of \
                 code reached only through it is partial"
                    .to_string(),
            ));
        }
    }

    // SPMD convergence of barrier / vltcfg.
    out.extend(divergence(cfg, &reachable));

    out.sort_by_key(|&(_, i, _)| i);
    out
}

/// Flag `barrier`/`vltcfg` instructions reachable from exactly one side of
/// some reachable two-way branch. Each instruction is flagged at most once
/// (against the first diverging branch found, in text order).
fn divergence(cfg: &Cfg, reachable: &[bool]) -> Vec<RawDiag> {
    let sites: Vec<usize> = cfg
        .insts
        .iter()
        .enumerate()
        .filter(|(i, inst)| {
            matches!(inst.op, Op::Barrier | Op::VltCfg) && reachable[cfg.block_of[*i]]
        })
        .map(|(i, _)| i)
        .collect();
    if sites.is_empty() {
        return Vec::new();
    }
    // What each site's own block can reach: a branch inside that set shares
    // a cycle with the site (loop-back branches), where the site already
    // executed on the way to the branch — only trip counts, not structure,
    // decide divergence there, so those branches are skipped.
    let site_reach: Vec<Vec<bool>> =
        sites.iter().map(|&i| cfg.reachable_from(cfg.block_of[i])).collect();

    let mut out: Vec<RawDiag> = Vec::new();
    let mut flagged = vec![false; cfg.insts.len()];
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        let Term::Branch { taken, fall: Some(fall) } = blk.term else { continue };
        if taken == fall {
            continue;
        }
        let from_taken = cfg.reachable_from(taken);
        let from_fall = cfg.reachable_from(fall);
        for (si, &i) in sites.iter().enumerate() {
            if flagged[i] || site_reach[si][b] {
                continue;
            }
            let sb = cfg.block_of[i];
            let (t, f) = (from_taken[sb], from_fall[sb]);
            if t != f {
                flagged[i] = true;
                let (code, what, risk) = if cfg.insts[i].op == Op::Barrier {
                    (
                        Code::DivergentBarrier,
                        "barrier",
                        "threads taking the other side skip the rendezvous",
                    )
                } else {
                    (
                        Code::DivergentVltcfg,
                        "vltcfg",
                        "threads taking the other side keep the old partition",
                    )
                };
                let side = if t { "taken" } else { "fall-through" };
                out.push((
                    code,
                    i,
                    format!(
                        "`{what}` is reachable only from the {side} side of the branch at \
                         instruction #{} — {risk}",
                        blk.end - 1
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlt_isa::asm::assemble;

    fn raw(src: &str) -> Vec<RawDiag> {
        let p = assemble(src).unwrap();
        check(&Cfg::build(p.decoded()))
    }

    fn has(d: &[RawDiag], code: Code) -> bool {
        d.iter().any(|(c, _, _)| *c == code)
    }

    #[test]
    fn clean_program() {
        let d = raw("li x1, 1\nbeqz x1, done\naddi x1, x1, 1\ndone:\nhalt\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unreachable_after_halt() {
        let d = raw("halt\nadd x1, x2, x3\n");
        assert!(has(&d, Code::Unreachable));
    }

    #[test]
    fn off_end_flagged() {
        let d = raw("add x1, x2, x3\n");
        assert!(has(&d, Code::OffEnd));
    }

    #[test]
    fn bad_target_flagged() {
        let d = raw("beq x0, x0, 1000\nhalt\n");
        assert!(has(&d, Code::BadTarget));
    }

    #[test]
    fn indirect_flagged() {
        let d = raw("jr x31\nhalt\n");
        assert!(has(&d, Code::IndirectFlow));
        // The halt after the jr is unreachable to the static analysis.
        assert!(has(&d, Code::Unreachable));
    }

    #[test]
    fn divergent_barrier_flagged() {
        // Barrier only on the fall-through side; both sides rejoin at done.
        let d = raw("tid x1\nbnez x1, done\nbarrier\ndone:\nhalt\n");
        assert!(has(&d, Code::DivergentBarrier), "{d:?}");
    }

    #[test]
    fn converged_barrier_clean() {
        let d = raw("tid x1\nbnez x1, done\naddi x2, x0, 1\ndone:\nbarrier\nhalt\n");
        assert!(!has(&d, Code::DivergentBarrier), "{d:?}");
    }

    #[test]
    fn barrier_in_loop_clean() {
        // A barrier inside a loop body is reachable from both sides of the
        // loop-back branch (the exit side has already passed it; the taken
        // side reaches it again), and from both sides of the entry.
        let d = raw("li x1, 4\nloop:\nbarrier\naddi x1, x1, -1\nbnez x1, loop\nhalt\n");
        assert!(!has(&d, Code::DivergentBarrier), "{d:?}");
    }

    #[test]
    fn divergent_vltcfg_flagged() {
        let d = raw("tid x1\nbnez x1, done\nli x2, 4\nvltcfg x2\ndone:\nhalt\n");
        assert!(has(&d, Code::DivergentVltcfg), "{d:?}");
    }
}
