//! Cross-thread overlap analysis (the pairing half of vlrace).
//!
//! [`crate::footprint`] analyzes the program once per concrete thread id.
//! This module decides, for every pair of runs, which analysis variables
//! are *synchronized* — guaranteed to hold the same value in both threads
//! whenever the threads are in the same barrier epoch — and then tests
//! every (access, access) pair with at least one write for overlap:
//!
//! * the epoch difference must be able to reach 0 (otherwise the accesses
//!   are barrier-separated), and
//! * the address difference must be able to land inside the conflict
//!   window `(-size₂, size₁)`.
//!
//! Both tests use the same bound machinery as the footprint pass (hull
//! plus gcd residue), with a small-domain enumeration fallback for
//! anti-correlated variables (ping-pong buffers).
//!
//! Synchronized variables are the load-bearing idea: a loop whose body
//! crosses a barrier advances in lock-step across threads, so its join
//! variable is *one* variable (side 0), not two — thread A's epoch-e row
//! and thread B's epoch-e row are the same row function of it. A loop
//! with no barrier inside runs free, so its join variable is private to
//! each side and the two instances range independently.
//!
//! Debugging aids: set `VLRACE_DEBUG` to dump each per-tid run's
//! converged variable ranges, and `VLRACE_DEBUG_PAIRS` to dump every
//! (access, access) pair that survives the feasibility tests.

use std::collections::{BTreeMap, BTreeSet};

use vlt_isa::{decode, disasm, Inst, Program};

use crate::cfg::Cfg;
use crate::diag::{Code, Diagnostic, Options, Report};
use crate::footprint::{
    analyze_tid, clb, cub, div_ceil, div_floor, Access, Env, Form, Qty, Rng, SlotKind, TidRun, Var,
    VarId,
};
use crate::interval::{max_opt, min_opt};

/// Static race analysis with default options plus program-embedded allows.
pub fn check_races(prog: &Program, nthr: usize) -> Report {
    check_races_with(prog, nthr, &Options::default().with_program_allows(prog))
}

/// Static race analysis under explicit options.
pub fn check_races_with(prog: &Program, nthr: usize, opts: &Options) -> Report {
    let raw = analyze(prog, nthr);
    let mut report = Report::default();
    for d in raw.diags {
        if opts.allow.contains(&d.code) {
            report.suppressed += 1;
        } else {
            report.diags.push(d);
        }
    }
    report
}

/// The static-instruction indices that participate in any potential race
/// (ignoring allows). The dynamic race checker in `vlt-exec` asserts that
/// every conflict it observes at runtime involves only sites in this set.
pub fn predicted_race_sites(prog: &Program, nthr: usize) -> BTreeSet<usize> {
    analyze(prog, nthr).sites
}

struct RaceOut {
    diags: Vec<Diagnostic>,
    sites: BTreeSet<usize>,
}

const FOLD_ROUNDS: usize = 3;

fn analyze(prog: &Program, nthr: usize) -> RaceOut {
    let mut out = RaceOut { diags: Vec::new(), sites: BTreeSet::new() };
    if nthr <= 1 {
        return out;
    }

    // Undecodable words analyze as `nop`, mirroring `verify_with` so the
    // instruction indices line up with every other pass.
    let insts: Vec<Inst> = prog.text.iter().map(|&w| decode(w).unwrap_or(Inst::NOP)).collect();
    if insts.is_empty() {
        return out;
    }
    let cfg = Cfg::build(insts);

    if cfg.has_indirect {
        out.diags.push(Diagnostic {
            code: Code::RaceUnknown,
            severity: Code::RaceUnknown.severity(),
            sidx: None,
            disasm: String::new(),
            msg: "indirect control flow (`jr`/`jalr`): thread footprints cannot be \
                  bounded, any shared access may race"
                .to_string(),
        });
        collect_mem_sites(&cfg, &mut out.sites);
        return out;
    }

    let runs = converged_runs(&cfg, &prog.data, nthr);

    if runs.iter().any(|r| r.failed) {
        out.diags.push(Diagnostic {
            code: Code::RaceUnknown,
            severity: Code::RaceUnknown.severity(),
            sidx: None,
            disasm: String::new(),
            msg: "the footprint analysis did not converge: thread footprints cannot \
                  be bounded, any shared access may race"
                .to_string(),
        });
        collect_mem_sites(&cfg, &mut out.sites);
        return out;
    }

    let anchored = barrier_anchored(&cfg);
    let mut seen: BTreeSet<(usize, usize, Code)> = BTreeSet::new();
    for t1 in 0..nthr {
        for t2 in t1 + 1..nthr {
            check_pair(&cfg, &runs[t1], &runs[t2], &anchored, None, &mut seen, &mut out);
        }
    }

    // Lazy refinement: only when the symbolic pass still sees potential
    // conflicts, ask the static DLP walker for exact, schedule-independent
    // per-thread address hulls and re-check with provably-disjoint pairs
    // pruned. Clean programs never pay for the walk; tid-tiled kernels the
    // symbolic footprints over-approximate (e.g. emergent per-thread
    // bounds threaded through memory) come back clean here.
    if !out.sites.is_empty() {
        if let Some(bounds) = crate::dlp::site_bounds(prog, nthr) {
            let mut pruned = RaceOut { diags: Vec::new(), sites: BTreeSet::new() };
            let mut seen2: BTreeSet<(usize, usize, Code)> = BTreeSet::new();
            for t1 in 0..nthr {
                for t2 in t1 + 1..nthr {
                    check_pair(
                        &cfg,
                        &runs[t1],
                        &runs[t2],
                        &anchored,
                        Some((&bounds[t1], &bounds[t2])),
                        &mut seen2,
                        &mut pruned,
                    );
                }
            }
            out = pruned;
        }
    }

    out.diags.sort_by_key(|d| (d.sidx, d.code));
    out
}

/// Analyze every tid, iterating the store-value overlay to a fixpoint:
/// each round's runs report what their stores may write where, and the
/// next round's folds absorb those hulls (or fail, when an intersecting
/// store's value or address is unboundable). Converged means the runs
/// were produced under exactly the overlay they regenerate, so every
/// fold's value hull accounts for every store that can touch its span.
fn converged_runs(cfg: &Cfg, data: &[u8], nthr: usize) -> Vec<TidRun> {
    let mut overlay = crate::content::Overlay::default();
    let mut runs: Vec<TidRun> = Vec::new();
    for round in 0..=FOLD_ROUNDS {
        runs = (0..nthr).map(|tid| analyze_tid(cfg, data, tid, nthr, &overlay)).collect();
        let next = build_overlay(&runs);
        if next == overlay {
            break;
        }
        if round == FOLD_ROUNDS {
            // No fixpoint within the round budget: one last fully
            // conservative pass with a poisoned overlay (every fold whose
            // span any store might reach fails).
            overlay = crate::content::Overlay { poisoned: true, ranges: Vec::new() };
            runs = (0..nthr).map(|tid| analyze_tid(cfg, data, tid, nthr, &overlay)).collect();
            break;
        }
        overlay = next;
    }
    runs
}

/// The static byte-address hull of one memory access site, analyzed as one
/// concrete thread. Produced by [`footprint_hulls`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteHull {
    /// Static instruction index of the load/store.
    pub sidx: usize,
    /// The concrete thread id the program was analyzed as.
    pub tid: usize,
    /// True for stores.
    pub write: bool,
    /// Lowest byte address the site can touch (`None` = unbounded below).
    pub lo: Option<i64>,
    /// One past the highest byte address the site can touch (`None` =
    /// unbounded above).
    pub hi: Option<i64>,
}

impl SiteHull {
    /// True when both sides of the hull are finite.
    pub fn bounded(&self) -> bool {
        self.lo.is_some() && self.hi.is_some()
    }

    /// True when the byte address range `[lo, hi)` lies inside the hull.
    /// An unbounded side admits everything on that side.
    pub fn covers(&self, lo: i64, hi: i64) -> bool {
        self.lo.is_none_or(|l| l <= lo) && self.hi.is_none_or(|h| hi <= h)
    }
}

/// The content-aware footprint analysis as a public oracle: analyze the
/// program once per concrete thread id and report, for every reachable
/// memory access site, the hull of byte addresses it can touch in that
/// thread. This is exactly the address knowledge the race pairing tests
/// consume, so the soundness contract is directly testable: every address
/// a real run of thread `tid` issues at site `sidx` must fall inside the
/// site's hull (the differential `footprint_fuzz` suite enforces this over
/// randomized indexed programs).
///
/// Returns `None` when no sound hulls exist: indirect control flow
/// (`jr`/`jalr`) or a diverged fixpoint. Unreachable sites produce no
/// entry; a site the analysis cannot bound produces an entry with `None`
/// sides. Entries are ordered by `(tid, program order)`.
pub fn footprint_hulls(prog: &Program, nthr: usize) -> Option<Vec<SiteHull>> {
    let insts: Vec<Inst> = prog.text.iter().map(|&w| decode(w).unwrap_or(Inst::NOP)).collect();
    if insts.is_empty() {
        return Some(Vec::new());
    }
    let cfg = Cfg::build(insts);
    if cfg.has_indirect {
        return None;
    }
    let runs = converged_runs(&cfg, &prog.data, nthr);
    if runs.iter().any(|r| r.failed) {
        return None;
    }
    let mut out = Vec::new();
    for run in &runs {
        for acc in &run.accesses {
            let (lo, hi) = match &acc.addr {
                Some(f) => {
                    let env = run.env(&acc.refine);
                    let lo = clb(&env, f, &mut Vec::new());
                    let hi = cub(&env, f, &mut Vec::new());
                    (lo, hi.map(|h| h + i64::from(acc.esize)))
                }
                None => (None, None),
            };
            out.push(SiteHull { sidx: acc.sidx, tid: run.tid, write: acc.write, lo, hi });
        }
    }
    Some(out)
}

fn collect_mem_sites(cfg: &Cfg, sites: &mut BTreeSet<usize>) {
    let reach = cfg.reachable();
    for (b, block) in cfg.blocks.iter().enumerate() {
        if !reach[b] {
            continue;
        }
        for i in block.start..block.end {
            if cfg.insts[i].op.class().is_mem() {
                sites.insert(i);
            }
        }
    }
}

/// The store-value overlay of a set of runs: every store's address span
/// with the hull of values it may write, evaluated with each run's own
/// bounds. A store with no address bound (or a failed run) poisons the
/// overlay — no fold whose span a store might reach can then succeed.
fn build_overlay(runs: &[TidRun]) -> crate::content::Overlay {
    let mut ov = crate::content::Overlay::default();
    for run in runs {
        if run.failed {
            ov.poisoned = true;
            continue;
        }
        for acc in &run.accesses {
            if !acc.write {
                continue;
            }
            let Some(f) = &acc.addr else {
                ov.poisoned = true;
                continue;
            };
            let env = run.env(&acc.refine);
            let lo = clb(&env, f, &mut Vec::new());
            let hi = cub(&env, f, &mut Vec::new());
            let (Some(lo), Some(hi)) = (lo, hi) else {
                ov.poisoned = true;
                continue;
            };
            ov.ranges.push((lo, hi + i64::from(acc.esize), acc.val));
        }
    }
    // Canonical order so overlay equality is the convergence test.
    ov.ranges.sort_unstable();
    ov.ranges.dedup();
    if ov.poisoned {
        ov.ranges.clear();
    }
    ov
}

/// Blocks at which a loop-join variable advances in lock-step across
/// threads: the block contains a `barrier`, or it lies on no cycle that
/// avoids barrier blocks (so every revisit crossed a barrier).
fn barrier_anchored(cfg: &Cfg) -> Vec<bool> {
    let nb = cfg.blocks.len();
    let has_barrier: Vec<bool> = cfg
        .blocks
        .iter()
        .map(|b| (b.start..b.end).any(|i| cfg.insts[i].op == vlt_isa::Op::Barrier))
        .collect();
    let mut anchored = vec![false; nb];
    for b in 0..nb {
        if has_barrier[b] {
            anchored[b] = true;
            continue;
        }
        // On a barrier-free cycle iff b reaches itself through non-barrier
        // blocks. Programs are small; a DFS per block is fine.
        let mut stack: Vec<usize> =
            cfg.blocks[b].succs.iter().copied().filter(|&s| !has_barrier[s]).collect();
        let mut seen = vec![false; nb];
        let mut cyclic = false;
        while let Some(n) = stack.pop() {
            if n == b {
                cyclic = true;
                break;
            }
            if seen[n] {
                continue;
            }
            seen[n] = true;
            stack.extend(cfg.blocks[n].succs.iter().copied().filter(|&s| !has_barrier[s]));
        }
        anchored[b] = !cyclic;
    }
    anchored
}

/// A form references only synchronized variables (all sides are 0 inside
/// a run, so cross-run structural equality plus this check is enough).
fn uniform(f: &Form, sync: &BTreeSet<VarId>) -> bool {
    f.t.iter().all(|(v, _)| sync.contains(&v.id))
}

/// Compute the synchronized-variable set for a pair of runs: the greatest
/// set such that every member's defining forms are uniform over the set.
fn sync_vars(a: &TidRun, b: &TidRun, anchored: &[bool]) -> BTreeSet<VarId> {
    // Optimistic candidates, then strip until stable (greatest fixpoint).
    let mut sync: BTreeSet<VarId> = BTreeSet::new();
    let mut blocks: Vec<usize> = Vec::new();
    for (&bb, ja) in &a.joins {
        let Some(jb) = b.joins.get(&bb) else { continue };
        if !anchored.get(bb).copied().unwrap_or(false) {
            continue;
        }
        // The anchor: the epoch must belong to the same slot in both runs
        // with the same coefficient, and that slot must be a strict
        // per-visit counter. Same epoch then implies same visit count.
        let (Some(ea), Some(eb)) = (ja.assign.get(&Qty::Epoch), jb.assign.get(&Qty::Epoch)) else {
            continue;
        };
        if ea.slot != eb.slot || ea.coef != eb.coef || ea.coef < 1 || ea.first != eb.first {
            continue;
        }
        let es = ea.slot as usize;
        let succ = Form::var(VarId::Slot { block: bb as u32, slot: ea.slot }).addc(1);
        let strict = |run: &TidRun| {
            let j = &run.joins[&bb];
            j.kinds.get(es) == Some(&SlotKind::Counter)
                && j.phi
                    .get(es)
                    .is_some_and(|edges| !edges.is_empty() && edges.values().all(|p| *p == succ))
        };
        if !strict(a) || !strict(b) {
            continue;
        }
        blocks.push(bb);
        // Candidate slots: structurally identical counters with the same
        // advance on every incoming edge.
        let ns = ja.kinds.len().min(jb.kinds.len());
        for s in 0..ns {
            if ja.kinds[s] != SlotKind::Counter || jb.kinds[s] != SlotKind::Counter {
                continue;
            }
            if ja.phi[s].is_empty() || ja.phi[s] != jb.phi[s] {
                continue;
            }
            let ma: Vec<_> = members_of(ja, s as u32);
            let mb: Vec<_> = members_of(jb, s as u32);
            if ma.is_empty() || ma != mb {
                continue;
            }
            sync.insert(VarId::Slot { block: bb as u32, slot: s as u32 });
        }
    }
    // `setvl` results synchronize when the request (the cap form) does;
    // folded loads when the address form does.
    for (id, ia) in &a.vars {
        match id {
            VarId::Vl(_) => {
                if let Some(ib) = b.vars.get(id) {
                    if ia.caps == ib.caps && !ia.caps.is_empty() && ia.lo == ib.lo && ia.hi == ib.hi
                    {
                        sync.insert(*id);
                    }
                }
            }
            VarId::Gen(s) => {
                let s = *s as usize;
                if let (Some(fa), Some(fb)) = (a.folds.get(&s), b.folds.get(&s)) {
                    // A widened fold absorbed concurrently-written ranges:
                    // its hull is sound, but mid-epoch the two threads can
                    // observe different values, so it never synchronizes.
                    if fa == fb && !fa.widened {
                        sync.insert(*id);
                    }
                }
            }
            _ => {}
        }
    }

    // Strip members whose defining forms reference non-sync variables.
    loop {
        let mut removed = false;
        let cur = sync.clone();
        for id in &cur {
            let ok = match id {
                VarId::Slot { block, slot } => {
                    let bb = *block as usize;
                    let ja = &a.joins[&bb];
                    let es = ja.assign[&Qty::Epoch].slot as usize;
                    let anchor_ok = uniform(&ja.assign[&Qty::Epoch].first, &cur)
                        && cur.contains(&VarId::Slot { block: *block, slot: es as u32 });
                    let edges = &ja.phi[*slot as usize];
                    anchor_ok && !edges.is_empty() && edges.values().all(|p| uniform(p, &cur))
                }
                VarId::Vl(_) => a.vars[id].caps.iter().all(|c| uniform(c, &cur)),
                VarId::Gen(s) => uniform(&a.folds[&(*s as usize)].addr, &cur),
                VarId::Lane(_) => false,
            };
            if !ok && sync.remove(id) {
                removed = true;
            }
        }
        if !removed {
            break;
        }
    }
    let _ = blocks;
    sync
}

/// Member quantities of one slot: `(qty, coef)` pairs, sorted by qty.
fn members_of(j: &crate::footprint::SlotState, slot: u32) -> Vec<(Qty, i64)> {
    j.assign.iter().filter(|(_, m)| m.slot == slot).map(|(q, m)| (*q, m.coef)).collect()
}

/// Retag a run-local form into the pair's shared form space: variables in
/// the sync set keep side 0, everything else becomes private to `side`.
fn retag(f: &Form, side: u8, sync: &BTreeSet<VarId>) -> Form {
    let mut t: Vec<(Var, i64)> =
        f.t.iter()
            .map(|&(v, k)| {
                let s = if sync.contains(&v.id) { 0 } else { side };
                (Var { side: s, id: v.id }, k)
            })
            .collect();
    t.sort_by_key(|&(v, _)| v);
    // Same id on both sides can collide only at side 0 (sync), where the
    // coefficients should then merge; rebuild via Form::add for safety.
    let mut out = Form { c: f.c, t: Vec::new() };
    for (v, k) in t {
        out = out.add(&Form { c: 0, t: vec![(v, k)] });
    }
    out
}

/// Bound environment for a pair of runs. Sync variables take the
/// intersection of both runs' knowledge (same concrete value in both);
/// private variables take their own run's.
struct PairEnv<'a> {
    a: &'a TidRun,
    b: &'a TidRun,
    ra: &'a crate::footprint::Refine,
    rb: &'a crate::footprint::Refine,
    sync: &'a BTreeSet<VarId>,
    pins: BTreeMap<Var, i64>,
}

impl PairEnv<'_> {
    fn run_rng(&self, run: &TidRun, refine: &crate::footprint::Refine, id: VarId) -> Rng {
        let g = run.vars.get(&id).map_or((None, None), |i| (i.lo, i.hi));
        let r = refine.get(&id).copied().unwrap_or((None, None));
        (max_opt(g.0, r.0), min_opt(g.1, r.1))
    }

    /// Residue step of a variable: every value is ≡ 0 (mod step). Pinned
    /// variables are already exact; sync variables must satisfy both
    /// runs' claims, so their gcd is sound.
    fn step(&self, v: Var) -> i64 {
        if self.pins.contains_key(&v) {
            return 1;
        }
        let of = |run: &TidRun| run.vars.get(&v.id).map_or(1, |i| i.step.max(1));
        match v.side {
            1 => of(self.a),
            2 => of(self.b),
            _ => crate::footprint::gcd(of(self.a), of(self.b)),
        }
    }
}

impl Env for PairEnv<'_> {
    fn rng(&self, v: Var) -> Rng {
        if let Some(&p) = self.pins.get(&v) {
            return (Some(p), Some(p));
        }
        match v.side {
            1 => self.run_rng(self.a, self.ra, v.id),
            2 => self.run_rng(self.b, self.rb, v.id),
            _ => {
                let x = self.run_rng(self.a, self.ra, v.id);
                let y = self.run_rng(self.b, self.rb, v.id);
                (max_opt(x.0, y.0), min_opt(x.1, y.1))
            }
        }
    }

    fn caps(&self, v: Var) -> Vec<Form> {
        let from = |run: &TidRun, side: u8| -> Vec<Form> {
            run.vars
                .get(&v.id)
                .map_or(Vec::new(), |i| i.caps.iter().map(|c| retag(c, side, self.sync)).collect())
        };
        match v.side {
            1 => from(self.a, 1),
            2 => from(self.b, 2),
            _ => {
                let mut c = from(self.a, 1);
                c.extend(from(self.b, 2));
                c
            }
        }
    }

    fn floors(&self, v: Var) -> Vec<Form> {
        let from = |run: &TidRun, side: u8| -> Vec<Form> {
            run.vars.get(&v.id).map_or(Vec::new(), |i| {
                i.floors.iter().map(|f| retag(f, side, self.sync)).collect()
            })
        };
        match v.side {
            1 => from(self.a, 1),
            2 => from(self.b, 2),
            _ => {
                let mut f = from(self.a, 1);
                f.extend(from(self.b, 2));
                f
            }
        }
    }
}

/// Exact per-(site, barrier-epoch) access sets (sorted disjoint `[lo, hi)`
/// ranges) for one thread, from [`crate::dlp::site_bounds`] — the DLP
/// walker's hulls, or the observed walk's exact sets when the walker
/// refuses. Two lemmas fall out of pruning with these: *partition* (hulls
/// confined to per-thread disjoint ranges never overlap) and
/// *injectivity/permutation* (hulls overlap, but the exact sets of a
/// provably-injective scatter — radix's exclusive-prefix-sum shape —
/// interleave without intersecting).
type SiteHulls = BTreeMap<usize, BTreeMap<u64, Vec<(u64, u64)>>>;

fn check_pair(
    cfg: &Cfg,
    a: &TidRun,
    b: &TidRun,
    anchored: &[bool],
    bounds: Option<(&SiteHulls, &SiteHulls)>,
    seen: &mut BTreeSet<(usize, usize, Code)>,
    out: &mut RaceOut,
) {
    let sync = sync_vars(a, b, anchored);
    for aa in &a.accesses {
        for ab in &b.accesses {
            if !aa.write && !ab.write {
                continue;
            }
            if let Some((ha, hb)) = bounds {
                // A site absent from a thread's hull map was never
                // executed by that thread. A conflict needs both accesses
                // in the same barrier epoch, so the pair survives only if
                // some epoch's hulls spatially overlap.
                let (Some(ea), Some(eb)) = (ha.get(&aa.sidx), hb.get(&ab.sidx)) else {
                    continue;
                };
                let overlap = ea.iter().any(|(e, la)| {
                    eb.get(e).is_some_and(|lb| crate::content::ranges_overlap(la, lb))
                });
                if !overlap {
                    continue;
                }
            }
            let code = if aa.write && ab.write { Code::RaceWw } else { Code::RaceRw };
            let de = retag(&aa.epoch, 1, &sync).sub(&retag(&ab.epoch, 2, &sync));
            let env = PairEnv {
                a,
                b,
                ra: &aa.refine,
                rb: &ab.refine,
                sync: &sync,
                pins: BTreeMap::new(),
            };
            match (&aa.addr, &ab.addr) {
                (Some(fa), Some(fb)) => {
                    let dd = retag(fa, 1, &sync).sub(&retag(fb, 2, &sync));
                    let win = (-(i64::from(ab.esize)), i64::from(aa.esize));
                    if conflict_possible(&env, &de, &dd, win) {
                        if std::env::var_os("VLRACE_DEBUG_PAIRS").is_some() {
                            eprintln!(
                                "pair #{}/#{} t{}/t{}\n  de={:?} [{:?},{:?}]\n  dd={:?} [{:?},{:?}] win={:?}",
                                aa.sidx, ab.sidx, a.tid, b.tid,
                                de, clb(&env, &de, &mut Vec::new()), cub(&env, &de, &mut Vec::new()),
                                dd, clb(&env, &dd, &mut Vec::new()), cub(&env, &dd, &mut Vec::new()),
                                win,
                            );
                        }
                        emit_pair(cfg, a.tid, b.tid, aa, ab, code, seen, out);
                    }
                }
                _ => {
                    // At least one unbounded footprint (and at least one
                    // write in the pair): epoch separation still excludes.
                    if maybe_zero(&env, &de) {
                        emit_unknown(cfg, a.tid, b.tid, aa, ab, seen, out);
                    }
                }
            }
        }
    }
}

/// Stratified integer feasibility: can `f` evaluate to a value in the
/// closed interval `[tlo, thi]`? Variables on opposite sides are
/// independent, each is an integer in its (refined) range, and each is a
/// multiple of its residue step — so a variable contributes
/// `(coef·step)·u` with `u` ranging over a contiguous integer interval.
/// Branching on the largest effective coefficient first makes
/// radix-structured address differences (row stride ≫ element size)
/// collapse to a handful of branches; this is exact separation the
/// interval hull cannot do (a row-partitioned matrix smears across row
/// boundaries the moment the column span exceeds one row). Unbounded
/// variables or fuel exhaustion fall back to "feasible".
fn strata_feasible(env: &PairEnv<'_>, f: &Form, tlo: i64, thi: i64) -> bool {
    let mut terms: Vec<(i128, i128, i128)> = Vec::new();
    for &(v, k) in &f.t {
        let (lo, hi) = env.rng(v);
        let (Some(lo), Some(hi)) = (lo, hi) else { return true };
        let s = env.step(v).max(1);
        let (ulo, uhi) = (div_ceil(lo, s), div_floor(hi, s));
        if ulo > uhi {
            // The range admits no multiple of the step: this refinement is
            // off every reachable path, so the pairing cannot conflict.
            return false;
        }
        let ce = i128::from(k) * i128::from(s);
        if ce == 0 {
            continue;
        }
        if ce > 0 {
            terms.push((ce, i128::from(ulo), i128::from(uhi)));
        } else {
            terms.push((-ce, -i128::from(uhi), -i128::from(ulo)));
        }
    }
    terms.sort_by_key(|&(ce, _, _)| std::cmp::Reverse(ce));
    let mut fuel = 4096u32;
    strata_rec(
        &terms,
        i128::from(tlo) - i128::from(f.c),
        i128::from(thi) - i128::from(f.c),
        &mut fuel,
    )
}

fn strata_rec(terms: &[(i128, i128, i128)], tlo: i128, thi: i128, fuel: &mut u32) -> bool {
    if tlo > thi {
        return false;
    }
    let Some((&(ce, ulo, uhi), rest)) = terms.split_first() else {
        return tlo <= 0 && 0 <= thi;
    };
    // Hull of the remaining strata (all effective coefficients positive).
    let (mut rlo, mut rhi) = (0i128, 0i128);
    for &(c, a, b) in rest {
        rlo = rlo.saturating_add(c.saturating_mul(a));
        rhi = rhi.saturating_add(c.saturating_mul(b));
    }
    // ce·u must land in [tlo - rhi, thi - rlo].
    let ua = div_ceil_128(tlo.saturating_sub(rhi), ce).max(ulo);
    let ub = div_floor_128(thi.saturating_sub(rlo), ce).min(uhi);
    if ua > ub {
        return false;
    }
    if ub - ua >= i128::from(*fuel) {
        return true;
    }
    let mut u = ua;
    while u <= ub {
        if *fuel == 0 {
            return true;
        }
        *fuel -= 1;
        let shift = ce.saturating_mul(u);
        if strata_rec(rest, tlo.saturating_sub(shift), thi.saturating_sub(shift), fuel) {
            return true;
        }
        u += 1;
    }
    false
}

fn div_floor_128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn div_ceil_128(a: i128, b: i128) -> i128 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Can the epoch difference be zero?
fn maybe_zero(env: &PairEnv<'_>, de: &Form) -> bool {
    if let Some(l) = clb(env, de, &mut Vec::new()) {
        if l > 0 {
            return false;
        }
    }
    if let Some(u) = cub(env, de, &mut Vec::new()) {
        if u < 0 {
            return false;
        }
    }
    // Residue: de ≡ c (mod gcd of coefficients) regardless of ranges.
    let g = de.gcd_terms();
    if g > 0 && de.c.rem_euclid(g) != 0 {
        return false;
    }
    strata_feasible(env, de, 0, 0)
}

/// Can the address difference land inside the open window `(win.0, win.1)`?
fn window_possible(env: &PairEnv<'_>, dd: &Form, win: (i64, i64)) -> bool {
    if let Some(l) = clb(env, dd, &mut Vec::new()) {
        if l >= win.1 {
            return false;
        }
    }
    if let Some(u) = cub(env, dd, &mut Vec::new()) {
        if u <= win.0 {
            return false;
        }
    }
    let g = dd.gcd_terms();
    if g > 0 {
        let mut any = false;
        let mut w = win.0 + 1;
        while w < win.1 {
            if (w - dd.c).rem_euclid(g) == 0 {
                any = true;
                break;
            }
            w += 1;
        }
        if !any {
            return false;
        }
    }
    strata_feasible(env, dd, win.0 + 1, win.1 - 1)
}

/// Full conflict test: both the epoch and window tests pass, including an
/// enumeration fallback over up to two small-domain variables (this is
/// what resolves anti-correlated ping-pong indices, where the hull of the
/// difference straddles 0 but no single assignment reaches it).
fn conflict_possible(env: &PairEnv<'_>, de: &Form, dd: &Form, win: (i64, i64)) -> bool {
    if !maybe_zero(env, de) || !window_possible(env, dd, win) {
        return false;
    }
    // Pick enumeration candidates: finite span ≤ 3, preferring variables
    // that appear in both forms (correlation is what the hull loses).
    let mut cands: Vec<(Var, i64, i64, bool)> = Vec::new();
    let mut seen_vars: BTreeSet<Var> = BTreeSet::new();
    for f in [de, dd] {
        for &(v, _) in &f.t {
            if !seen_vars.insert(v) {
                continue;
            }
            let (lo, hi) = env.rng(v);
            if let (Some(l), Some(h)) = (lo, hi) {
                if h - l <= 3 {
                    let both =
                        de.t.iter().any(|&(w, _)| w == v) && dd.t.iter().any(|&(w, _)| w == v);
                    cands.push((v, l, h, both));
                }
            }
        }
    }
    if cands.is_empty() {
        return true;
    }
    cands.sort_by_key(|&(_, l, h, both)| (!both, h - l));
    cands.truncate(2);

    // Every assignment must be excluded for the conflict to be impossible.
    let mut assignments: Vec<BTreeMap<Var, i64>> = vec![BTreeMap::new()];
    for &(v, l, h, _) in &cands {
        let mut next = Vec::new();
        for asg in &assignments {
            for val in l..=h {
                let mut a2 = asg.clone();
                a2.insert(v, val);
                next.push(a2);
            }
        }
        assignments = next;
    }
    for pins in assignments {
        let mut de2 = de.clone();
        let mut dd2 = dd.clone();
        for (&v, &val) in &pins {
            let k = Form::konst(val);
            de2 = de2.subst(v, &k);
            dd2 = dd2.subst(v, &k);
        }
        let penv = PairEnv { a: env.a, b: env.b, ra: env.ra, rb: env.rb, sync: env.sync, pins };
        if maybe_zero(&penv, &de2) && window_possible(&penv, &dd2, win) {
            return true;
        }
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn emit_pair(
    cfg: &Cfg,
    t1: usize,
    t2: usize,
    aa: &Access,
    ab: &Access,
    code: Code,
    seen: &mut BTreeSet<(usize, usize, Code)>,
    out: &mut RaceOut,
) {
    out.sites.insert(aa.sidx);
    out.sites.insert(ab.sidx);
    let key = (aa.sidx.min(ab.sidx), aa.sidx.max(ab.sidx), code);
    if !seen.insert(key) {
        return;
    }
    let kind1 = if aa.write { "write" } else { "read" };
    let kind2 = if ab.write { "write" } else { "read" };
    out.diags.push(Diagnostic {
        code,
        severity: code.severity(),
        sidx: Some(aa.sidx),
        disasm: disasm(&cfg.insts[aa.sidx]),
        msg: format!(
            "this {kind1} (e.g. thread {t1}) may overlap the {kind2} at #{} \
             `{}` (e.g. thread {t2}) within the same barrier epoch",
            ab.sidx,
            disasm(&cfg.insts[ab.sidx]),
        ),
    });
}

fn emit_unknown(
    cfg: &Cfg,
    t1: usize,
    t2: usize,
    aa: &Access,
    ab: &Access,
    seen: &mut BTreeSet<(usize, usize, Code)>,
    out: &mut RaceOut,
) {
    out.sites.insert(aa.sidx);
    out.sites.insert(ab.sidx);
    // Anchor at the unbounded access; fall back to the other one.
    let (anchor, other, ta, to) =
        if aa.addr.is_none() { (aa, ab, t1, t2) } else { (ab, aa, t2, t1) };
    let key = (anchor.sidx, anchor.sidx, Code::RaceUnknown);
    if !seen.insert(key) {
        return;
    }
    let kind = if anchor.write { "write" } else { "read" };
    let okind = if other.write { "write" } else { "read" };
    out.diags.push(Diagnostic {
        code: Code::RaceUnknown,
        severity: Code::RaceUnknown.severity(),
        sidx: Some(anchor.sidx),
        disasm: disasm(&cfg.insts[anchor.sidx]),
        msg: format!(
            "this {kind} (e.g. thread {ta}) has no bounded footprint and shares an \
             epoch with the {okind} at #{} `{}` (e.g. thread {to})",
            other.sidx,
            disasm(&cfg.insts[other.sidx]),
        ),
    });
}
