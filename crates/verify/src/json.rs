//! Machine-readable diagnostics — the `vlint --json` schema.
//!
//! Version 1 of the schema is one JSON object per checked file:
//!
//! ```json
//! {
//!   "schema": "vlint-report",
//!   "version": 1,
//!   "path": "kernels/spmv.s",
//!   "errors": 0,
//!   "warnings": 1,
//!   "infos": 0,
//!   "suppressed": 0,
//!   "diagnostics": [
//!     {
//!       "code": "dead-write",
//!       "severity": "warning",
//!       "sidx": 12,
//!       "pc": 4144,
//!       "disasm": "addi x5, x5, 8",
//!       "msg": "register written but the value can never be read afterwards"
//!     }
//!   ]
//! }
//! ```
//!
//! `sidx`/`pc` are `null` for unanchored findings; `disasm` may be empty.
//! `errors`/`warnings`/`infos` are derived counts included for consumers
//! that do not want to walk the array. The schema is append-only: later
//! versions may add fields but never rename or remove these.
//!
//! [`report_to_json`] and [`report_from_json`] are exact inverses for
//! every representable report — the round-trip test in this module is the
//! schema-stability gate.

use std::fmt::Write as _;

use crate::diag::{Code, Diagnostic, Report, Severity};

/// Current schema version emitted by [`report_to_json`].
pub const JSON_SCHEMA_VERSION: u64 = 1;

/// Serialize one file's verification outcome to a schema-v1 JSON object.
pub fn report_to_json(path: &str, report: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"vlint-report\",");
    let _ = writeln!(s, "  \"version\": {JSON_SCHEMA_VERSION},");
    let _ = writeln!(s, "  \"path\": {},", quote(path));
    let _ = writeln!(s, "  \"errors\": {},", report.errors());
    let _ = writeln!(s, "  \"warnings\": {},", report.warnings());
    let _ = writeln!(s, "  \"infos\": {},", report.infos());
    let _ = writeln!(s, "  \"suppressed\": {},", report.suppressed);
    s.push_str("  \"diagnostics\": [");
    for (i, d) in report.diags.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"code\": {},", quote(d.code.name()));
        let _ = writeln!(s, "      \"severity\": {},", quote(&d.severity.to_string()));
        match d.sidx {
            Some(i) => {
                let _ = writeln!(s, "      \"sidx\": {i},");
                let _ = writeln!(s, "      \"pc\": {},", d.pc().unwrap());
            }
            None => {
                let _ = writeln!(s, "      \"sidx\": null,");
                let _ = writeln!(s, "      \"pc\": null,");
            }
        }
        let _ = writeln!(s, "      \"disasm\": {},", quote(&d.disasm));
        let _ = writeln!(s, "      \"msg\": {}", quote(&d.msg));
        s.push_str("    }");
    }
    if !report.diags.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}");
    s
}

/// One file's outcome inside a `vlint --json` document.
#[derive(Debug)]
pub enum FileOutcome {
    /// The file assembled and was analyzed.
    Report(Report),
    /// The file failed to assemble (the message is the assembler error).
    AssemblyError(String),
}

/// Parse a full `vlint --json` document — the top-level
/// `{"schema": "vlint", "version": 1, "files": [...]}` wrapper — into
/// `(path, outcome)` pairs, in CLI order.
pub fn vlint_output_from_json(text: &str) -> Result<Vec<(String, FileOutcome)>, String> {
    let v = parse(text)?;
    let obj = v.obj().ok_or("top level is not an object")?;
    let schema = get(obj, "schema").and_then(Jv::str).ok_or("missing `schema`")?;
    if schema != "vlint" {
        return Err(format!("unknown schema `{schema}`"));
    }
    let version = get(obj, "version").and_then(Jv::num).ok_or("missing `version`")?;
    if version != JSON_SCHEMA_VERSION as i64 {
        return Err(format!("unsupported schema version {version}"));
    }
    let files = get(obj, "files").and_then(Jv::arr).ok_or("missing `files`")?;
    let mut out = Vec::new();
    for f in files {
        let fo = f.obj().ok_or("file entry is not an object")?;
        let path = get(fo, "path").and_then(Jv::str).ok_or("file entry missing `path`")?;
        let outcome = match get(fo, "assembly_error").and_then(Jv::str) {
            Some(e) => FileOutcome::AssemblyError(e.to_string()),
            None => FileOutcome::Report(report_from_obj(fo)?),
        };
        out.push((path.to_string(), outcome));
    }
    Ok(out)
}

/// Parse a schema-v1 JSON object back into `(path, Report)`.
///
/// Accepts exactly what [`report_to_json`] emits (any whitespace layout);
/// unknown fields are ignored so later append-only schema versions still
/// parse. Severities and codes must resolve to known names.
pub fn report_from_json(text: &str) -> Result<(String, Report), String> {
    let v = parse(text)?;
    let obj = v.obj().ok_or("top level is not an object")?;
    let schema = get(obj, "schema").and_then(Jv::str).ok_or("missing `schema`")?;
    if schema != "vlint-report" {
        return Err(format!("unknown schema `{schema}`"));
    }
    let version = get(obj, "version").and_then(Jv::num).ok_or("missing `version`")?;
    if version != JSON_SCHEMA_VERSION as i64 {
        return Err(format!("unsupported schema version {version}"));
    }
    let path = get(obj, "path").and_then(Jv::str).ok_or("missing `path`")?.to_string();
    let report = report_from_obj(obj)?;
    Ok((path, report))
}

/// Reconstruct a [`Report`] from an already-parsed `vlint-report` object.
fn report_from_obj(obj: &[(String, Jv)]) -> Result<Report, String> {
    let suppressed = get(obj, "suppressed").and_then(Jv::num).ok_or("missing `suppressed`")?;
    let diags = get(obj, "diagnostics").and_then(Jv::arr).ok_or("missing `diagnostics`")?;
    let mut report = Report {
        diags: Vec::new(),
        suppressed: usize::try_from(suppressed).map_err(|_| "negative `suppressed`")?,
    };
    for d in diags {
        let d = d.obj().ok_or("diagnostic is not an object")?;
        let code_name = get(d, "code").and_then(Jv::str).ok_or("diagnostic missing `code`")?;
        let code =
            Code::from_name(code_name).ok_or_else(|| format!("unknown lint code `{code_name}`"))?;
        let sev = get(d, "severity").and_then(Jv::str).ok_or("diagnostic missing `severity`")?;
        let severity = match sev {
            "info" => Severity::Info,
            "warning" => Severity::Warn,
            "error" => Severity::Error,
            other => return Err(format!("unknown severity `{other}`")),
        };
        let sidx = match get(d, "sidx") {
            Some(Jv::Null) | None => None,
            Some(v) => Some(
                v.num()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or("diagnostic `sidx` is not a non-negative integer")?,
            ),
        };
        report.diags.push(Diagnostic {
            code,
            severity,
            sidx,
            disasm: get(d, "disasm").and_then(Jv::str).unwrap_or("").to_string(),
            msg: get(d, "msg").and_then(Jv::str).ok_or("diagnostic missing `msg`")?.to_string(),
        });
    }
    Ok(report)
}

/// JSON string literal with the escapes the schema needs.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value — just enough to round-trip the schema (integers
/// only; the schema has no fractional numbers).
enum Jv {
    Null,
    Bool(#[allow(dead_code)] bool),
    Num(i64),
    Str(String),
    Arr(Vec<Jv>),
    Obj(Vec<(String, Jv)>),
}

impl Jv {
    fn obj(&self) -> Option<&[(String, Jv)]> {
        match self {
            Jv::Obj(o) => Some(o),
            _ => None,
        }
    }
    fn arr(&self) -> Option<&[Jv]> {
        match self {
            Jv::Arr(a) => Some(a),
            _ => None,
        }
    }
    fn str(&self) -> Option<&str> {
        match self {
            Jv::Str(s) => Some(s),
            _ => None,
        }
    }
    fn num(&self) -> Option<i64> {
        match self {
            Jv::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn get<'a>(obj: &'a [(String, Jv)], key: &str) -> Option<&'a Jv> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn parse(text: &str) -> Result<Jv, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Jv) -> Result<Jv, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Jv, String> {
        match self.peek()? {
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Jv::Obj(fields));
                }
                loop {
                    let Jv::Str(k) = self.string()? else { unreachable!() };
                    self.expect(b':')?;
                    fields.push((k, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Jv::Obj(fields));
                        }
                        c => return Err(format!("expected `,` or `}}`, got `{}`", c as char)),
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Jv::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Jv::Arr(items));
                        }
                        c => return Err(format!("expected `,` or `]`, got `{}`", c as char)),
                    }
                }
            }
            b'"' => self.string(),
            b't' => self.lit("true", Jv::Bool(true)),
            b'f' => self.lit("false", Jv::Bool(false)),
            b'n' => self.lit("null", Jv::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
        }
    }

    fn number(&mut self) -> Result<Jv, String> {
        let start = self.pos;
        if self.bytes[self.pos] == b'-' {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Jv::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<Jv, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(Jv::Str(out)),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // The emitter only writes \u for control chars;
                            // surrogate pairs are not part of the schema.
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| "bad \\u codepoint".to_string())?,
                            );
                        }
                        _ => return Err(format!("bad escape `\\{}`", e as char)),
                    }
                }
                _ => {
                    // Continue the UTF-8 sequence byte-for-byte: the input
                    // is a &str, so sequences are valid by construction.
                    let s = &self.bytes[self.pos - 1..];
                    let ch_len = utf8_len(b);
                    let ch =
                        std::str::from_utf8(&s[..ch_len]).map_err(|_| "bad UTF-8".to_string())?;
                    out.push_str(ch);
                    self.pos += ch_len - 1;
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: Code, sidx: Option<usize>, disasm: &str, msg: &str) -> Diagnostic {
        Diagnostic { code, severity: code.severity(), sidx, disasm: disasm.into(), msg: msg.into() }
    }

    /// The schema-stability gate: emit → parse is the identity on every
    /// field, including awkward characters in strings.
    #[test]
    fn report_round_trips() {
        let report = Report {
            diags: vec![
                diag(Code::ZeroVl, Some(4), "setvl x0, x3", "request is 0"),
                diag(Code::RaceWw, Some(17), "vstx v1, x2, v3", "quotes \" and \\ back\\slash"),
                diag(Code::RaceUnknown, None, "", "newline\nand tab\tand bell\u{7} and é"),
                diag(Code::DlpShortVl, Some(0), "vadd.vv v1, v2, v3", "短い VL"),
            ],
            suppressed: 3,
        };
        let text = report_to_json("dir/some file.s", &report);
        let (path, back) = report_from_json(&text).unwrap();
        assert_eq!(path, "dir/some file.s");
        assert_eq!(back.suppressed, report.suppressed);
        assert_eq!(back.diags.len(), report.diags.len());
        for (a, b) in report.diags.iter().zip(&back.diags) {
            assert_eq!(a.code, b.code);
            assert_eq!(a.severity, b.severity);
            assert_eq!(a.sidx, b.sidx);
            assert_eq!(a.disasm, b.disasm);
            assert_eq!(a.msg, b.msg);
        }
        // Derived counts were emitted consistently.
        assert!(text.contains("\"errors\": 1"));
        assert!(text.contains("\"warnings\": 2"));
        assert!(text.contains("\"infos\": 1"));
    }

    #[test]
    fn empty_report_round_trips() {
        let (path, back) = report_from_json(&report_to_json("x.s", &Report::default())).unwrap();
        assert_eq!(path, "x.s");
        assert!(back.diags.is_empty());
        assert_eq!(back.suppressed, 0);
    }

    /// A frozen v1 document must keep parsing forever (the schema is
    /// append-only), including fields this version does not know about.
    #[test]
    fn frozen_v1_document_parses() {
        let doc = r#"{
            "schema": "vlint-report", "version": 1, "path": "a.s",
            "errors": 1, "warnings": 0, "infos": 0, "suppressed": 2,
            "future_field": [1, 2, {"x": true}],
            "diagnostics": [
                {"code": "oob-write", "severity": "error", "sidx": 3,
                 "pc": 4108, "disasm": "sd x1, 0(x2)", "msg": "out of bounds"}
            ]
        }"#;
        let (path, r) = report_from_json(doc).unwrap();
        assert_eq!(path, "a.s");
        assert_eq!(r.suppressed, 2);
        assert_eq!(r.diags.len(), 1);
        assert_eq!(r.diags[0].code, Code::OobWrite);
        assert_eq!(r.diags[0].severity, Severity::Error);
        assert_eq!(r.diags[0].sidx, Some(3));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(report_from_json("").is_err());
        assert!(report_from_json("[]").is_err());
        assert!(report_from_json("{\"schema\": \"other\"}").is_err());
        assert!(report_from_json("{\"schema\": \"vlint-report\", \"version\": 99}").is_err());
        let bad_code = r#"{"schema": "vlint-report", "version": 1, "path": "a.s",
            "suppressed": 0, "diagnostics": [{"code": "nope", "severity": "error",
            "msg": "x"}]}"#;
        assert!(report_from_json(bad_code).is_err());
    }
}
