//! Forward abstract interpretation over the CFG.
//!
//! One fixpoint computes three families of facts simultaneously, because
//! they share the same propagation structure:
//!
//! * **Definedness** — for every `x`/`f`/`v` register, whether it has been
//!   written on *all* paths ([`Init::Yes`]), *some* paths ([`Init::Maybe`]),
//!   or *no* path ([`Init::No`]) from the entry. `x0` is hardwired zero and
//!   `x30` (`sp`) is initialized by the runtime, so both start defined.
//! * **Constant propagation** — integer register values in the flat lattice
//!   `Bot < K(c) < Top`, exact over the ALU subset the kernels use for
//!   address arithmetic (`li`/`la` expansions, shifts, add/mul). This feeds
//!   the static memory checks and the `vl`/`vltcfg` checks.
//! * **Vector-length state** — abstract `vl` (value + whether any `setvl`
//!   executed), abstract MVL under the current `vltcfg` partition, and
//!   whether `vm` was ever written.
//!
//! Soundness caveats (documented in DESIGN.md §7): register definedness is
//! whole-register (a masked or element-wise write counts as a full def),
//! and memory checks fire only where the address is statically constant —
//! the analysis never *proves* memory safety, it catches constant-address
//! slips.

use vlt_isa::{Inst, Op, Program, RegRef, DATA_BASE, MAX_VL, STACK_BASE, STACK_SIZE, TEXT_BASE};

use crate::cfg::Cfg;
use crate::diag::{Code, Options};
use crate::interval::Iv;

/// Hull width beyond which interval joins widen to unbounded. Generous
/// enough to keep branch-merged pointer hulls and `tid`/`vl`-scaled offsets
/// precise, small enough that slow loop-counter growth converges quickly.
const WIDEN_WIDTH: i64 = 4096;

/// Flat constant lattice: `Bot` (unreached) < `K(c)` < `Top` (unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cv {
    /// No value has reached this point yet.
    Bot,
    /// Exactly this value on every path.
    K(i64),
    /// More than one possible value.
    Top,
}

impl Cv {
    fn join(self, other: Cv) -> Cv {
        match (self, other) {
            (Cv::Bot, v) | (v, Cv::Bot) => v,
            (Cv::K(a), Cv::K(b)) if a == b => Cv::K(a),
            _ => Cv::Top,
        }
    }

    fn map2(self, other: Cv, f: impl Fn(i64, i64) -> i64) -> Cv {
        match (self, other) {
            (Cv::K(a), Cv::K(b)) => Cv::K(f(a, b)),
            (Cv::Bot, _) | (_, Cv::Bot) => Cv::Bot,
            _ => Cv::Top,
        }
    }

    fn known(self) -> Option<i64> {
        match self {
            Cv::K(v) => Some(v),
            _ => None,
        }
    }
}

/// Three-point definedness lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Not written on any path.
    No,
    /// Written on some paths but not all.
    Maybe,
    /// Written on every path.
    Yes,
}

impl Init {
    fn join(self, other: Init) -> Init {
        if self == other {
            self
        } else {
            Init::Maybe
        }
    }
}

/// The abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsState {
    /// Integer register values.
    pub x: [Cv; 32],
    /// Integer register value *intervals* — a strictly weaker but wider
    /// net than `x`: where the constant lattice collapses to `Top`, the
    /// interval can still bound the value (`tid` in `[0, 63]`, a `setvl`
    /// result in `[1, mvl]`, a hull of branch-merged constants). Joins
    /// widen any growing side straight to unbounded, so the fixpoint still
    /// terminates by state equality.
    pub xr: [Iv; 32],
    /// Integer register definedness.
    pub xi: [Init; 32],
    /// FP register definedness.
    pub fi: [Init; 32],
    /// Vector register definedness (whole-register granularity).
    pub vi: [Init; 32],
    /// Abstract current vector length.
    pub vl: Cv,
    /// Whether any `setvl` executed on paths reaching this point.
    pub vl_set: Init,
    /// Abstract MVL under the current `vltcfg` partition.
    pub mvl: Cv,
    /// Whether `vm` was ever written.
    pub vm_set: Init,
    /// True while no path has reached this point (join identity).
    pub bot: bool,
}

impl AbsState {
    /// The entry state: architectural reset. Registers reset to zero, but
    /// only `x0` (hardwired) and `x30` (stack pointer, set per-thread by the
    /// runtime) count as *defined*; reading any other register before
    /// writing it is a def-before-use finding even though the machine
    /// forgivingly returns zero. `x30` differs per thread, so its value is
    /// unknown.
    pub fn entry() -> AbsState {
        let mut x = [Cv::K(0); 32];
        x[30] = Cv::Top;
        let mut xr = [Iv::exact(0); 32];
        // The runtime points x30 at the top of the thread's stack slot.
        xr[30] = Iv::new((STACK_BASE + STACK_SIZE) as i64, (STACK_BASE + 64 * STACK_SIZE) as i64);
        let mut xi = [Init::No; 32];
        xi[0] = Init::Yes;
        xi[30] = Init::Yes;
        AbsState {
            x,
            xr,
            xi,
            fi: [Init::No; 32],
            vi: [Init::No; 32],
            vl: Cv::K(MAX_VL as i64),
            vl_set: Init::No,
            mvl: Cv::K(MAX_VL as i64),
            vm_set: Init::No,
            bot: false,
        }
    }

    fn bottom() -> AbsState {
        AbsState { bot: true, ..AbsState::entry() }
    }

    fn join_from(&mut self, other: &AbsState) -> bool {
        if other.bot {
            return false;
        }
        if self.bot {
            *self = other.clone();
            return true;
        }
        let before = self.clone();
        for i in 0..32 {
            self.x[i] = self.x[i].join(other.x[i]);
            self.xr[i] = before.xr[i].join_widen(other.xr[i], WIDEN_WIDTH);
            self.xi[i] = self.xi[i].join(other.xi[i]);
            self.fi[i] = self.fi[i].join(other.fi[i]);
            self.vi[i] = self.vi[i].join(other.vi[i]);
        }
        self.vl = self.vl.join(other.vl);
        self.vl_set = self.vl_set.join(other.vl_set);
        self.mvl = self.mvl.join(other.mvl);
        self.vm_set = self.vm_set.join(other.vm_set);
        *self != before
    }
}

/// A finding produced by the abstract interpretation, before severity
/// assignment and allow filtering.
pub type RawDiag = (Code, usize, String);

/// Run the forward analysis; returns raw findings in discovery order.
pub fn run(cfg: &Cfg, prog: &Program, opts: &Options) -> Vec<RawDiag> {
    let nb = cfg.blocks.len();
    let mut input: Vec<AbsState> = (0..nb).map(|_| AbsState::bottom()).collect();
    input[cfg.entry] = AbsState::entry();

    // Fixpoint over reverse post-order.
    let order = cfg.rpo();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            if input[b].bot {
                continue;
            }
            let mut st = input[b].clone();
            for i in cfg.blocks[b].start..cfg.blocks[b].end {
                transfer(&cfg.insts[i], i, &mut st, prog, opts, None);
            }
            for &s in &cfg.blocks[b].succs {
                if input[s].join_from(&st) {
                    changed = true;
                }
            }
        }
    }

    // Emission pass: replay each reachable block from its fixed input.
    let mut out: Vec<RawDiag> = Vec::new();
    for &b in &order {
        if input[b].bot {
            continue;
        }
        let mut st = input[b].clone();
        for i in cfg.blocks[b].start..cfg.blocks[b].end {
            transfer(&cfg.insts[i], i, &mut st, prog, opts, Some(&mut out));
        }
    }
    out
}

/// Apply one instruction to the abstract state, optionally emitting
/// findings. The emission-pass replay must take exactly the same state
/// transitions as the fixpoint pass, so all mutation lives here.
fn transfer(
    inst: &Inst,
    sidx: usize,
    st: &mut AbsState,
    prog: &Program,
    opts: &Options,
    mut sink: Option<&mut Vec<RawDiag>>,
) {
    let (rd, rs1) = (inst.rd, inst.rs1);
    let mut emit = |code: Code, msg: String| {
        if let Some(s) = sink.as_deref_mut() {
            s.push((code, sidx, msg));
        }
    };

    // --- use checks -------------------------------------------------------
    let (defs, uses) = inst.defs_uses();
    let zero_idiom = inst.is_zero_idiom();
    for u in &uses {
        match *u {
            RegRef::I(r) => {
                if !zero_idiom {
                    check_init(st.xi[r as usize], format!("x{r}"), &mut emit);
                }
            }
            RegRef::F(r) => check_init(st.fi[r as usize], format!("f{r}"), &mut emit),
            RegRef::V(r) => {
                if !zero_idiom {
                    check_init(st.vi[r as usize], format!("v{r}"), &mut emit);
                }
            }
            RegRef::Vl => {
                if inst.op.class().is_vector() && st.vl_set != Init::Yes {
                    let how = if st.vl_set == Init::No { "never" } else { "not on every path" };
                    emit(
                        Code::VlReset,
                        format!(
                            "vector instruction executes with `vl` {how} set by `setvl` \
                             (reset value is the full MVL)"
                        ),
                    );
                }
            }
            RegRef::Vm => {
                let meaningful = inst.masked
                    || matches!(inst.op, Op::Vmerge | Op::Vpopc | Op::Vmfirst | Op::Vmgetb);
                if meaningful && st.vm_set == Init::No {
                    emit(
                        Code::MaskReset,
                        "mask-consuming operation with `vm` never written \
                         (reset mask enables every lane)"
                            .to_string(),
                    );
                }
            }
        }
    }

    // --- memory checks ----------------------------------------------------
    check_memory(inst, st, prog, opts, &mut emit);

    // --- vl / vltcfg semantics -------------------------------------------
    match inst.op {
        Op::SetVl => {
            let req = st.x[rs1 as usize];
            if req == Cv::K(0) {
                emit(
                    Code::ZeroVl,
                    "`setvl` request is statically zero — dynamic `ZeroVl` fault".to_string(),
                );
            }
            if let (Some(r), Some(m)) = (req.known(), st.mvl.known()) {
                if r > m && rd == 0 {
                    emit(
                        Code::SetvlDiscardsClamp,
                        format!(
                            "request {r} exceeds the partition MVL {m} and the clamped \
                             result is discarded (rd = x0)"
                        ),
                    );
                }
            }
            st.vl = match (req.known(), st.mvl.known()) {
                (Some(r), Some(m)) => Cv::K(r.min(m)),
                _ => Cv::Top,
            };
            st.vl_set = Init::Yes;
        }
        Op::VltCfg => {
            let t = st.x[rs1 as usize];
            if let Some(tv) = t.known() {
                let h = u64::try_from(tv).ok().and_then(vlt_isa::vltcfg::unpack);
                if let Some(h) = h {
                    let new_mvl = vlt_isa::vltcfg::effective_mvl(MAX_VL, h) as i64;
                    // Only meaningful when a `setvl` actually ran: the
                    // reset vl is the full MVL and clamping it is the
                    // normal effect of partitioning.
                    if let (Init::Maybe | Init::Yes, Some(v)) = (st.vl_set, st.vl.known()) {
                        if v > new_mvl {
                            emit(
                                Code::VltcfgClampsVl,
                                format!(
                                    "partition MVL {new_mvl} is below the current vl {v}; \
                                     the stale vl is silently clamped — `vltcfg` before `setvl`"
                                ),
                            );
                        }
                    }
                    st.mvl = Cv::K(new_mvl);
                } else {
                    emit(
                        Code::BadVltCfg,
                        format!(
                            "operand {tv} is not a valid threads x clusters \
                             encoding — dynamic fault"
                        ),
                    );
                    // Keep analyzing with an unknown partition.
                    st.mvl = Cv::Top;
                }
            } else {
                st.mvl = Cv::Top;
            }
            st.vl = match (st.vl.known(), st.mvl.known()) {
                (Some(v), Some(m)) => Cv::K(v.min(m)),
                _ => Cv::Top,
            };
        }
        _ => {}
    }

    // --- value transfer for integer defs ---------------------------------
    let val = int_value(inst, st);
    let ivl = int_interval(inst, st, val);

    // --- apply defs -------------------------------------------------------
    for d in &defs {
        match *d {
            RegRef::I(r) => {
                st.xi[r as usize] = Init::Yes;
                st.x[r as usize] = val;
                st.xr[r as usize] = ivl;
            }
            RegRef::F(r) => st.fi[r as usize] = Init::Yes,
            RegRef::V(r) => st.vi[r as usize] = Init::Yes,
            RegRef::Vm => st.vm_set = Init::Yes,
            RegRef::Vl => {} // handled in the SetVl arm above
        }
    }
    // setvl writes the clamped vl to rd.
    if inst.op == Op::SetVl && rd != 0 {
        st.x[rd as usize] = st.vl;
        st.xr[rd as usize] = vl_interval(st);
    }
}

/// The interval a `vl`-valued result lies in: exact when the constant
/// lattice pins it, else `[1, mvl]` (a live `vl` is never zero).
fn vl_interval(st: &AbsState) -> Iv {
    match st.vl.known() {
        Some(v) => Iv::exact(v),
        None => Iv::new(1, st.mvl.known().unwrap_or(MAX_VL as i64)),
    }
}

fn check_init(init: Init, reg: String, emit: &mut impl FnMut(Code, String)) {
    match init {
        Init::Yes => {}
        Init::No => emit(
            Code::UndefRead,
            format!("{reg} is read but never written on any path from entry (reads reset zero)"),
        ),
        Init::Maybe => emit(
            Code::MaybeUndefRead,
            format!("{reg} is read but written on only some paths from entry"),
        ),
    }
}

/// The constant value an instruction writes to its integer destination, if
/// the analysis can compute it. Unmodeled ops produce `Top`.
fn int_value(inst: &Inst, st: &AbsState) -> Cv {
    let (rs1, rs2, imm) = (inst.rs1 as usize, inst.rs2 as usize, inst.imm as i64);
    let a = st.x[rs1];
    let b = st.x[rs2];
    let k = Cv::K(imm);
    match inst.op {
        Op::Addi => a.map2(k, i64::wrapping_add),
        Op::Andi => a.map2(k, |x, y| x & y),
        Op::Ori => a.map2(k, |x, y| x | y),
        Op::Xori => a.map2(k, |x, y| x ^ y),
        Op::Slli => a.map2(k, |x, y| ((x as u64) << (y as u64 & 63)) as i64),
        Op::Srli => a.map2(k, |x, y| ((x as u64) >> (y as u64 & 63)) as i64),
        Op::Srai => a.map2(k, |x, y| x >> (y as u64 & 63)),
        Op::Slti => a.map2(k, |x, y| (x < y) as i64),
        Op::Lui => Cv::K(imm << 13),
        Op::Add => a.map2(b, i64::wrapping_add),
        Op::Sub => a.map2(b, i64::wrapping_sub),
        Op::Mul => a.map2(b, i64::wrapping_mul),
        Op::Div => a.map2(b, |x, y| if y == 0 { -1 } else { x.wrapping_div(y) }),
        Op::Rem => a.map2(b, |x, y| if y == 0 { x } else { x.wrapping_rem(y) }),
        Op::And => a.map2(b, |x, y| x & y),
        Op::Or => a.map2(b, |x, y| x | y),
        Op::Xor => a.map2(b, |x, y| x ^ y),
        Op::Sll => a.map2(b, |x, y| ((x as u64) << (y as u64 & 63)) as i64),
        Op::Srl => a.map2(b, |x, y| ((x as u64) >> (y as u64 & 63)) as i64),
        Op::Sra => a.map2(b, |x, y| x >> (y as u64 & 63)),
        Op::Slt => a.map2(b, |x, y| (x < y) as i64),
        Op::Sltu => a.map2(b, |x, y| ((x as u64) < (y as u64)) as i64),
        Op::GetVl => st.vl,
        // Loads, tid/nthr, reductions, extracts, converts: unknown.
        _ => Cv::Top,
    }
}

/// The interval an instruction's integer destination lies in. Falls back
/// to the constant lattice when that is exact, and knows the
/// architecturally-bounded sources the constant lattice cannot track:
/// `tid`/`nthr`, `setvl`/`getvl` results, mask population counts, compare
/// results, and sub-word loads. Interval arithmetic covers the address-
/// forming ALU subset.
fn int_interval(inst: &Inst, st: &AbsState, val: Cv) -> Iv {
    if let Some(k) = val.known() {
        return Iv::exact(k);
    }
    let (rs1, rs2, imm) = (inst.rs1 as usize, inst.rs2 as usize, inst.imm as i64);
    let a = st.xr[rs1];
    let b = st.xr[rs2];
    match inst.op {
        Op::Addi => a.add_k(imm),
        Op::Add => a.add(b),
        Op::Sub => a.sub(b),
        Op::Mul => a.mul(b),
        Op::Slli => a.shl_k((imm as u64 & 63) as u32),
        Op::Andi => Iv::and_k(imm),
        Op::Slti | Op::Slt | Op::Sltu => Iv::new(0, 1),
        Op::Feq | Op::Flt | Op::Fle => Iv::new(0, 1),
        Op::Tid => Iv::new(0, 63),
        Op::Nthr => Iv::new(1, 64),
        Op::GetVl => vl_interval(st),
        Op::Vpopc => Iv::new(0, MAX_VL as i64),
        Op::Vmfirst => Iv::new(-1, MAX_VL as i64 - 1),
        Op::Vmgetb => Iv::new(0, 1),
        Op::Lwu => Iv::new(0, u32::MAX as i64),
        Op::Lw => Iv::new(i32::MIN as i64, i32::MAX as i64),
        Op::Lb => Iv::new(i8::MIN as i64, i8::MAX as i64),
        Op::Lbu => Iv::new(0, u8::MAX as i64),
        _ => Iv::TOP,
    }
}

/// Static memory checks for constant-addressed accesses.
fn check_memory(
    inst: &Inst,
    st: &AbsState,
    prog: &Program,
    opts: &Options,
    emit: &mut impl FnMut(Code, String),
) {
    use vlt_isa::OpClass;
    let class = inst.op.class();
    if !class.is_mem() {
        return;
    }
    let base = st.x[inst.rs1 as usize];
    let Some(b) = base.known() else {
        // Not a constant — but the interval domain may still bound the
        // whole address range. Only a *certain* miss is reported: every
        // address in the (sound, over-approximate) hull lies outside both
        // the data segment and the stack, so whatever the concrete value,
        // the access is out of bounds.
        if matches!(class, OpClass::Load | OpClass::Store) {
            let size = match inst.op {
                Op::Ld | Op::Sd | Op::Fld | Op::Fsd => 8,
                Op::Lw | Op::Lwu | Op::Sw => 4,
                _ => 1,
            };
            let write = class == OpClass::Store;
            let range = st.xr[inst.rs1 as usize].add_k(inst.imm as i64);
            if let (Some(lo), Some(hi)) = (range.lo, range.hi) {
                check_addr_range(lo, hi, size, write, prog, opts, emit);
            }
        }
        return;
    };

    match class {
        OpClass::Load | OpClass::Store => {
            let size = match inst.op {
                Op::Ld | Op::Sd | Op::Fld | Op::Fsd => 8,
                Op::Lw | Op::Lwu | Op::Sw => 4,
                _ => 1,
            };
            let addr = b.wrapping_add(inst.imm as i64);
            let write = class == OpClass::Store;
            check_addr(addr, size, write, prog, opts, emit);
        }
        OpClass::VLoad | OpClass::VStore => {
            let write = class == OpClass::VStore;
            match inst.op {
                Op::Vld | Op::Vst => {
                    // Check the full unit-stride footprint only when vl is
                    // statically known; otherwise just the first element
                    // (assuming the MVL bound would flag valid short strips).
                    let elems = st.vl.known().unwrap_or(1).max(1);
                    check_addr(b, 8, write, prog, opts, emit);
                    if elems > 1 {
                        check_addr(b + 8 * (elems - 1), 8, write, prog, opts, emit);
                    }
                }
                Op::Vlds | Op::Vsts => {
                    if let (Some(s), Some(v)) = (st.x[inst.rs2 as usize].known(), st.vl.known()) {
                        // First and last element of the strided footprint;
                        // alignment only when the stride preserves it.
                        let aligned_stride = s % 8 == 0;
                        let sz = if aligned_stride { 8 } else { 1 };
                        check_addr(b, sz, write, prog, opts, emit);
                        if v > 1 {
                            check_addr(
                                b.wrapping_add(s.wrapping_mul(v - 1)),
                                sz,
                                write,
                                prog,
                                opts,
                                emit,
                            );
                        }
                    }
                }
                // Indexed gather/scatter: element addresses are data values.
                _ => {}
            }
        }
        _ => unreachable!("is_mem covers scalar and vector memory classes"),
    }
}

/// Report an access whose *entire* possible address range `[lo, hi]`
/// (start addresses, each touching `size` bytes) misses both the data
/// segment and the stack. Unlike [`check_addr`] this fires on non-constant
/// addresses, but only when the miss is certain for every value in the
/// hull.
fn check_addr_range(
    lo: i64,
    hi: i64,
    size: i64,
    write: bool,
    prog: &Program,
    opts: &Options,
    emit: &mut impl FnMut(Code, String),
) {
    let (code, what) =
        if write { (Code::OobWrite, "store to") } else { (Code::OobRead, "load from") };
    if hi < 0 {
        emit(code, format!("{what} a negative address (all of [{lo:#x}, {hi:#x}])"));
        return;
    }
    let data_end = DATA_BASE + prog.data.len() as u64;
    let read_end = (data_end + if write { 0 } else { opts.read_slack }) as i64;
    let stack_end = (STACK_BASE + 64 * STACK_SIZE) as i64;
    let touches = |start: i64, end: i64| -> bool {
        // Does any access starting in [lo, hi] overlap [start, end)?
        hi.saturating_add(size) > start && lo < end
    };
    if !touches(DATA_BASE as i64, read_end) && !touches(STACK_BASE as i64, stack_end) {
        emit(
            code,
            format!(
                "{what} [{lo:#x}, {hi:#x}]: every possible address lies outside the \
                 data segment [{DATA_BASE:#x}, {data_end:#x}) and the stack region"
            ),
        );
    }
}

fn check_addr(
    addr: i64,
    size: i64,
    write: bool,
    prog: &Program,
    opts: &Options,
    emit: &mut impl FnMut(Code, String),
) {
    let (code, what) =
        if write { (Code::OobWrite, "store to") } else { (Code::OobRead, "load from") };
    if addr < 0 {
        emit(code, format!("{what} negative address {addr:#x}"));
        return;
    }
    let a = addr as u64;
    if !a.is_multiple_of(size as u64) {
        emit(
            Code::Misaligned,
            format!("address {a:#x} is not aligned to the {size}-byte element size"),
        );
    }
    let data_end = DATA_BASE + prog.data.len() as u64;
    let read_end = data_end + if write { 0 } else { opts.read_slack };
    let in_data = (DATA_BASE..read_end).contains(&a);
    let stack_end = STACK_BASE + 64 * STACK_SIZE;
    let in_stack = (STACK_BASE..stack_end).contains(&a);
    if !in_data && !in_stack {
        let text_end = TEXT_BASE + 4 * prog.text.len() as u64;
        let region =
            if (TEXT_BASE..text_end).contains(&a) { " (inside the text segment)" } else { "" };
        emit(
            code,
            format!(
                "{what} {a:#x}{region}, outside the data segment \
                 [{DATA_BASE:#x}, {data_end:#x}) and the stack region"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlt_isa::asm::assemble;

    fn raw(src: &str) -> Vec<RawDiag> {
        let p = assemble(src).unwrap();
        let cfg = Cfg::build(p.decoded());
        run(&cfg, &p, &Options::default())
    }

    fn has(diags: &[RawDiag], code: Code) -> bool {
        diags.iter().any(|(c, _, _)| *c == code)
    }

    #[test]
    fn clean_kernel_is_clean() {
        let d = raw(".data\nxs: .dword 1, 2, 3, 4\n.text\n\
             li x1, 4\nsetvl x2, x1\nla x3, xs\nvld v1, x3\n\
             vadd.vv v2, v1, v1\nvst v2, x3\nhalt\n");
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn undef_read_caught() {
        let d = raw("add x1, x2, x3\nhalt\n");
        assert!(has(&d, Code::UndefRead));
    }

    #[test]
    fn maybe_undef_on_one_path() {
        let d = raw("beqz x0, skip\nli x5, 1\nskip:\nadd x1, x5, x0\nhalt\n");
        assert!(has(&d, Code::MaybeUndefRead));
        assert!(!has(&d, Code::UndefRead));
    }

    #[test]
    fn zero_idiom_not_flagged() {
        let d = raw("xor x5, x5, x5\nadd x1, x5, x0\nvxor.vv v1, v1, v1\nli x2, 4\nsetvl x0, x2\nvadd.vv v2, v1, v1\nhalt\n");
        assert!(!has(&d, Code::UndefRead), "{d:?}");
    }

    #[test]
    fn vl_reset_warned() {
        let d = raw("vid v1\nhalt\n");
        assert!(has(&d, Code::VlReset));
    }

    #[test]
    fn zero_vl_caught() {
        let d = raw("setvl x1, x0\nhalt\n");
        assert!(has(&d, Code::ZeroVl));
    }

    #[test]
    fn bad_vltcfg_caught() {
        let d = raw("li x1, 3\nvltcfg x1\nhalt\n");
        assert!(has(&d, Code::BadVltCfg));
    }

    #[test]
    fn vltcfg_after_setvl_warned() {
        let d = raw("li x1, 64\nsetvl x2, x1\nli x3, 4\nvltcfg x3\nhalt\n");
        assert!(has(&d, Code::VltcfgClampsVl));
    }

    #[test]
    fn vltcfg_before_setvl_clean() {
        let d = raw("li x3, 4\nvltcfg x3\nli x1, 64\nsetvl x2, x1\nhalt\n");
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn oob_store_caught() {
        let d = raw("li x1, 64\nsd x1, 0(x1)\nhalt\n");
        assert!(has(&d, Code::OobWrite));
    }

    #[test]
    fn misaligned_caught() {
        let d = raw(".data\nxs: .dword 7\n.text\nla x1, xs\nld x2, 3(x1)\nhalt\n");
        assert!(has(&d, Code::Misaligned));
    }

    #[test]
    fn vld_footprint_checked() {
        // 1-element array, vl = 16: the last element lands past data+slack.
        let d = raw(".data\nys: .dword 1\n.text\n\
             li x1, 16\nsetvl x0, x1\nla x2, ys\nvld v1, x2\nhalt\n");
        assert!(has(&d, Code::OobRead), "{d:?}");
    }

    /// The interval domain proves whole-range misses that the constant
    /// lattice cannot: a `tid`-scaled address is not constant, but its
    /// hull `[0, 504]` lies entirely below `DATA_BASE`.
    #[test]
    fn interval_whole_range_oob_caught() {
        let d = raw("tid x1\nslli x2, x1, 3\nld x3, 0(x2)\nhalt\n");
        assert!(has(&d, Code::OobRead), "{d:?}");
    }

    /// ... but a `tid`-scaled index off a valid base stays clean: part of
    /// the hull is inside the data segment, so nothing is certain.
    #[test]
    fn interval_partial_overlap_not_flagged() {
        let d = raw(".data\nxs: .dword 1, 2, 3, 4\n.text\n\
             la x4, xs\ntid x1\nslli x2, x1, 3\nadd x5, x4, x2\nld x3, 0(x5)\nhalt\n");
        assert!(!has(&d, Code::OobRead), "{d:?}");
    }

    /// Loop-carried growth widens to unbounded instead of looping the
    /// fixpoint forever, and an unbounded hull never emits.
    #[test]
    fn interval_loop_growth_terminates() {
        let d = raw(".data\nxs: .dword 1\n.text\n\
             la x1, xs\nli x2, 0\nloop:\naddi x2, x2, 1\nblt x2, x1, loop\nhalt\n");
        assert!(!has(&d, Code::OobRead), "{d:?}");
    }

    #[test]
    fn stack_access_clean() {
        let d = raw("sd x0, -8(sp)\nld x1, -8(sp)\nhalt\n");
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn mask_reset_warned() {
        let d = raw("li x1, 4\nsetvl x0, x1\nvid v1\nvmerge v2, v1, v1\nhalt\n");
        assert!(has(&d, Code::MaskReset));
    }

    #[test]
    fn setvl_discard_clamp_warned() {
        let d = raw("li x1, 4\nvltcfg x1\nli x2, 64\nsetvl x0, x2\nhalt\n");
        assert!(has(&d, Code::SetvlDiscardsClamp));
    }
}
