//! `vlint` — static verifier and lint driver for VLT assembly files.
//!
//! ```text
//! vlint [OPTIONS] <PATH>...
//!
//! Paths may be `.s` files or directories (scanned recursively for `.s`).
//!
//! Options:
//!   --strict          exit nonzero on warnings, not just errors
//!   --json            print machine-readable diagnostics (one
//!                     `vlint-report` object per file inside a top-level
//!                     `{"schema": "vlint", "version": 1, "files": [...]}`
//!                     document; see `vlt_verify::json` for the schema)
//!   --allow <code>    suppress a lint code (repeatable)
//!   --races[=N]       also run the barrier-epoch race analysis at N
//!                     threads (default: the program's `vlint.threads`
//!                     symbol, else 2)
//!   --dlp[=N]         also run the static DLP analysis at N threads
//!                     (default 1): prints the predicted Table-4 profile
//!                     and VLTCFG partition advice, and surfaces the
//!                     analyzer's diagnostics (`dlp-*` codes)
//!   --list-codes      print every lint code with severity and description
//!   -q, --quiet       print nothing for clean files
//! ```
//!
//! Exit status: 0 when every file is clean, 1 when any file has an
//! error-severity finding (or any finding under `--strict`), 2 on usage,
//! I/O, or internal analysis problems.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use vlt_isa::asm::assemble;
use vlt_verify::dlp::{advise, dlp_report, DlpOptions};
use vlt_verify::json::report_to_json;
use vlt_verify::{check_races_with, verify_with, Code, Options};

struct Cli {
    strict: bool,
    quiet: bool,
    json: bool,
    /// `Some(None)` = `--races` (thread count from the program or 2);
    /// `Some(Some(n))` = `--races=n`.
    races: Option<Option<usize>>,
    /// `Some(None)` = `--dlp` (1 thread); `Some(Some(n))` = `--dlp=n`.
    dlp: Option<Option<usize>>,
    opts: Options,
    paths: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: vlint [--strict] [--json] [--allow <code>] [--races[=N]] [--dlp[=N]] [--list-codes] \
     [-q|--quiet] <path>...\n\
     checks .s files (directories are scanned recursively)"
}

fn parse_args() -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        strict: false,
        quiet: false,
        json: false,
        races: None,
        dlp: None,
        opts: Options::default(),
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--strict" => cli.strict = true,
            "--json" => cli.json = true,
            "-q" | "--quiet" => cli.quiet = true,
            "--races" => cli.races = Some(None),
            "--dlp" => cli.dlp = Some(None),
            "--list-codes" => {
                for &c in Code::ALL {
                    println!("{:7} {:22} {}", c.severity().to_string(), c.name(), c.describe());
                }
                return Ok(None);
            }
            "--allow" => {
                let v = args.next().ok_or("--allow needs a lint code".to_string())?;
                let code = Code::from_name(&v).ok_or(format!("unknown lint code `{v}`"))?;
                cli.opts.allow.insert(code);
            }
            "-h" | "--help" => {
                println!("{}", usage());
                return Ok(None);
            }
            _ if a.starts_with("--dlp=") => {
                let v = &a["--dlp=".len()..];
                let n: usize =
                    v.parse().map_err(|_| format!("--dlp needs a thread count, got `{v}`"))?;
                if n == 0 {
                    return Err("--dlp thread count must be at least 1".to_string());
                }
                cli.dlp = Some(Some(n));
            }
            _ if a.starts_with("--races=") => {
                let v = &a["--races=".len()..];
                let n: usize =
                    v.parse().map_err(|_| format!("--races needs a thread count, got `{v}`"))?;
                if n == 0 {
                    return Err("--races thread count must be at least 1".to_string());
                }
                cli.races = Some(Some(n));
            }
            _ if a.starts_with('-') => return Err(format!("unknown option `{a}`")),
            _ => cli.paths.push(PathBuf::from(a)),
        }
    }
    if cli.paths.is_empty() {
        return Err("no input paths".to_string());
    }
    Ok(Some(cli))
}

/// Collect `.s` files under `path` (recursively for directories).
fn collect(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let meta = std::fs::metadata(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if meta.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for e in entries {
            if e.is_dir() || e.extension().is_some_and(|x| x == "s") {
                collect(&e, out)?;
            }
        }
    } else {
        out.push(path.to_path_buf());
    }
    Ok(())
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("vlint: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let mut files = Vec::new();
    for p in &cli.paths {
        if let Err(e) = collect(p, &mut files) {
            eprintln!("vlint: {e}");
            return ExitCode::from(2);
        }
    }
    if files.is_empty() {
        eprintln!("vlint: no .s files found under the given paths");
        return ExitCode::from(2);
    }

    let mut failed = false;
    let mut json_files: Vec<String> = Vec::new();
    for f in &files {
        let src = match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("vlint: {}: {e}", f.display());
                return ExitCode::from(2);
            }
        };
        let prog = match assemble(&src) {
            Ok(p) => p,
            Err(e) => {
                if cli.json {
                    json_files.push(assembly_error_json(&f.display().to_string(), &e.to_string()));
                } else {
                    println!("{}: assembly error: {e}", f.display());
                }
                failed = true;
                continue;
            }
        };
        let opts = cli.opts.clone().with_program_allows(&prog);
        // A panic inside the analyses is an internal error, not a finding:
        // report it and exit 2 so CI can tell "program has races" (1) from
        // "the checker itself fell over" (2).
        let analysis = std::panic::catch_unwind(|| {
            let mut report = verify_with(&prog, &opts);
            if let Some(n) = cli.races {
                let threads =
                    n.or_else(|| prog.symbol("vlint.threads").map(|v| v as usize)).unwrap_or(2);
                let races = check_races_with(&prog, threads, &opts);
                report.diags.extend(races.diags);
                report.suppressed += races.suppressed;
            }
            let dlp = cli.dlp.map(|n| {
                let threads = n.unwrap_or(1);
                let (profile, diags) =
                    dlp_report(&prog, &DlpOptions { threads, ..DlpOptions::default() });
                let mut kept = 0;
                for d in diags {
                    if opts.allow.contains(&d.code) {
                        report.suppressed += 1;
                    } else {
                        report.diags.push(d);
                        kept += 1;
                    }
                }
                let _ = kept;
                profile
            });
            (report, dlp)
        });
        let (report, dlp_profile) = match analysis {
            Ok(r) => r,
            Err(_) => {
                eprintln!(
                    "vlint: {}: internal error in analysis (this is a vlint bug)",
                    f.display()
                );
                return ExitCode::from(2);
            }
        };
        let bad = report.errors() > 0 || (cli.strict && report.warnings() > 0);
        failed |= bad;
        if cli.json {
            json_files.push(report_to_json(&f.display().to_string(), &report));
            continue;
        }
        if report.diags.is_empty() && report.suppressed == 0 && dlp_profile.is_none() {
            if !cli.quiet {
                println!("{}: clean", f.display());
            }
            continue;
        }
        println!("{}:", f.display());
        if let Some(p) = &dlp_profile {
            let t = &p.total;
            println!(
                "  dlp: {} | {} insts, {} epochs | {:.1}% vectorized, avg VL {:.1}, common VLs {:?}",
                if p.exact { "exact" } else { "inexact (partial lower bound)" },
                t.insts,
                p.epochs,
                t.pct_vectorization(),
                t.avg_vl(),
                t.common_vls(4),
            );
            let a = advise(p);
            for r in &a.regions {
                if r.region == 0 {
                    continue;
                }
                println!(
                    "  dlp: region {}: {:?}, {:.1}% vectorized, avg VL {:.1}, best {} thread(s)",
                    r.region, r.opportunity, r.pct_vectorization, r.avg_vl, r.best_threads,
                );
            }
            println!(
                "  dlp: advice: {} thread(s) x MVL {} (est. {:.2}x over serial, {:.1}% opportunity)",
                a.best.threads, a.best.mvl, a.best.speedup, a.opportunity_pct,
            );
        }
        for d in &report.diags {
            println!("  {d}");
        }
        println!(
            "  {} error(s), {} warning(s){}",
            report.errors(),
            report.warnings(),
            if report.suppressed > 0 {
                format!(", {} suppressed", report.suppressed)
            } else {
                String::new()
            }
        );
    }
    if cli.json {
        let body = json_files
            .iter()
            .map(|f| {
                let indented: Vec<String> = f.lines().map(|l| format!("    {l}")).collect();
                indented.join("\n")
            })
            .collect::<Vec<_>>()
            .join(",\n");
        println!("{{\n  \"schema\": \"vlint\",\n  \"version\": 1,\n  \"files\": [");
        if !body.is_empty() {
            println!("{body}");
        }
        println!("  ]\n}}");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// A file that failed to assemble, as a JSON object (no diagnostics —
/// the assembler stops at the first syntax error).
fn assembly_error_json(path: &str, err: &str) -> String {
    let q = |s: &str| {
        let mut out = String::from("\"");
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    };
    format!(
        "{{\n  \"schema\": \"vlint-report\",\n  \"version\": 1,\n  \"path\": {},\n  \
         \"assembly_error\": {}\n}}",
        q(path),
        q(err)
    )
}
