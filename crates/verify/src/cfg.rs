//! Control-flow graph over a program's text section.
//!
//! Nodes are basic blocks of static instructions; edges follow branch and
//! jump targets computed from the PC-relative word offsets the assembler
//! emits. `jr`/`jalr` targets are register values, which the verifier does
//! not track across blocks — those terminators get no successors and the
//! analysis reports [`crate::Code::IndirectFlow`] so the partiality is
//! visible.

use vlt_isa::{Inst, Op};

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Term {
    /// Execution continues into the next block.
    FallThrough,
    /// `halt`: the thread stops.
    Halt,
    /// Unconditional `j`/`jal` to a static target block.
    Jump(usize),
    /// Conditional branch: taken-target block and fall-through block.
    /// `fall` is `None` when the branch is the last instruction (falling
    /// through would leave the text segment).
    Branch {
        /// Block reached when the branch is taken.
        taken: usize,
        /// Block reached on fall-through, if any.
        fall: Option<usize>,
    },
    /// `jr`/`jalr`: target unknown to the static analysis.
    Indirect,
    /// The block's last instruction falls off the end of the text segment.
    OffEnd,
}

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone)]
pub struct Block {
    /// First instruction index (inclusive).
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// How the block ends.
    pub term: Term,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

/// The control-flow graph of one program.
#[derive(Debug)]
pub struct Cfg {
    /// Decoded text, one entry per instruction.
    pub insts: Vec<Inst>,
    /// Basic blocks in text order.
    pub blocks: Vec<Block>,
    /// Map from instruction index to owning block id.
    pub block_of: Vec<usize>,
    /// Block containing the entry point (block 0 by construction: the
    /// assembler always enters at the first instruction).
    pub entry: usize,
    /// Branch/jump targets that landed outside the text segment, as
    /// `(instruction index, raw target index)` pairs.
    pub wild_targets: Vec<(usize, i64)>,
    /// True if the program contains `jr`/`jalr`.
    pub has_indirect: bool,
}

/// The static branch-target instruction index, if `inst` is a direct
/// control transfer at index `idx`.
pub fn direct_target(inst: &Inst, idx: usize) -> Option<i64> {
    match inst.op {
        Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu | Op::J | Op::Jal => {
            Some(idx as i64 + inst.imm as i64)
        }
        _ => None,
    }
}

impl Cfg {
    /// Build the CFG for a decoded text section. `insts` must be non-empty.
    pub fn build(insts: Vec<Inst>) -> Cfg {
        let n = insts.len();
        assert!(n > 0, "empty text section");

        // Leaders: entry, every direct target in range, every instruction
        // after a control transfer or halt.
        let mut leader = vec![false; n];
        leader[0] = true;
        let mut wild_targets = Vec::new();
        let mut has_indirect = false;
        for (i, inst) in insts.iter().enumerate() {
            if let Some(t) = direct_target(inst, i) {
                if (0..n as i64).contains(&t) {
                    leader[t as usize] = true;
                } else {
                    wild_targets.push((i, t));
                }
            }
            if matches!(inst.op, Op::Jr | Op::Jalr) {
                has_indirect = true;
            }
            let ends_block = inst.is_control() || inst.op == Op::Halt;
            if ends_block && i + 1 < n {
                leader[i + 1] = true;
            }
        }

        let mut block_of = vec![0usize; n];
        let mut blocks: Vec<Block> = Vec::new();
        for i in 0..n {
            if leader[i] {
                blocks.push(Block {
                    start: i,
                    end: i + 1,
                    term: Term::FallThrough,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
            } else {
                blocks.last_mut().expect("index 0 is a leader").end = i + 1;
            }
            block_of[i] = blocks.len() - 1;
        }

        // Terminators and edges.
        let nb = blocks.len();
        for b in 0..nb {
            let last = blocks[b].end - 1;
            let inst = &insts[last];
            let fall_block = if blocks[b].end < n { Some(block_of[blocks[b].end]) } else { None };
            let target_block = direct_target(inst, last)
                .filter(|t| (0..n as i64).contains(t))
                .map(|t| block_of[t as usize]);
            let term = match inst.op {
                Op::Halt => Term::Halt,
                Op::Jr | Op::Jalr => Term::Indirect,
                Op::J | Op::Jal => match target_block {
                    Some(t) => Term::Jump(t),
                    None => Term::OffEnd, // wild target: no static successor
                },
                Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu => match target_block {
                    Some(t) => Term::Branch { taken: t, fall: fall_block },
                    None => match fall_block {
                        Some(f) => Term::Jump(f), // wild taken-target: only fall-through is static
                        None => Term::OffEnd,
                    },
                },
                _ => match fall_block {
                    Some(_) => Term::FallThrough,
                    None => Term::OffEnd,
                },
            };
            blocks[b].term = term;
            let succs: Vec<usize> = match term {
                Term::Halt | Term::Indirect | Term::OffEnd => vec![],
                Term::Jump(t) => vec![t],
                Term::Branch { taken, fall } => {
                    let mut s = vec![taken];
                    if let Some(f) = fall {
                        if f != taken {
                            s.push(f);
                        }
                    }
                    s
                }
                Term::FallThrough => vec![block_of[blocks[b].end]],
            };
            blocks[b].succs = succs;
        }
        for b in 0..nb {
            let succs = blocks[b].succs.clone();
            for s in succs {
                if !blocks[s].preds.contains(&b) {
                    blocks[s].preds.push(b);
                }
            }
        }

        let entry = block_of[0];
        Cfg { insts, blocks, block_of, entry, wild_targets, has_indirect }
    }

    /// Blocks reachable from the entry block.
    pub fn reachable(&self) -> Vec<bool> {
        self.reachable_from(self.entry)
    }

    /// Blocks reachable from `from` (inclusive) following successor edges.
    pub fn reachable_from(&self, from: usize) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![from];
        while let Some(b) = stack.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            stack.extend(self.blocks[b].succs.iter().copied());
        }
        seen
    }

    /// Blocks in reverse post-order from the entry (a good iteration order
    /// for forward dataflow).
    pub fn rpo(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.blocks.len());
        let mut visited = vec![false; self.blocks.len()];
        // Iterative DFS with an explicit stack of (block, next-succ-index).
        let mut stack: Vec<(usize, usize)> = vec![(self.entry, 0)];
        visited[self.entry] = true;
        while let Some((b, i)) = stack.pop() {
            if i < self.blocks[b].succs.len() {
                stack.push((b, i + 1));
                let s = self.blocks[b].succs[i];
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(b);
            }
        }
        order.reverse();
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlt_isa::asm::assemble;

    fn cfg_of(src: &str) -> Cfg {
        let p = assemble(src).unwrap();
        Cfg::build(p.decoded())
    }

    #[test]
    fn straight_line_is_one_block() {
        let c = cfg_of("add x1, x2, x3\nadd x4, x5, x6\nhalt\n");
        assert_eq!(c.blocks.len(), 1);
        assert_eq!(c.blocks[0].term, Term::Halt);
        assert!(c.blocks[0].succs.is_empty());
    }

    #[test]
    fn branch_splits_blocks() {
        let c = cfg_of("beqz x1, done\naddi x2, x2, 1\ndone:\nhalt\n");
        assert_eq!(c.blocks.len(), 3);
        assert!(matches!(c.blocks[0].term, Term::Branch { .. }));
        // Both sides converge on the halt block.
        assert_eq!(c.blocks[0].succs.len(), 2);
        assert_eq!(c.blocks[2].preds.len(), 2);
    }

    #[test]
    fn loop_back_edge() {
        let c = cfg_of("li x1, 4\nloop:\naddi x1, x1, -1\nbnez x1, loop\nhalt\n");
        let reach = c.reachable();
        assert!(reach.iter().all(|&r| r));
        // The loop head has two predecessors: entry and the back edge.
        let head = c.block_of[1];
        assert_eq!(c.blocks[head].preds.len(), 2);
    }

    #[test]
    fn off_end_detected() {
        let c = cfg_of("add x1, x2, x3\n");
        assert_eq!(c.blocks[0].term, Term::OffEnd);
    }

    #[test]
    fn indirect_has_no_succs() {
        let c = cfg_of("jr x31\nhalt\n");
        assert!(c.has_indirect);
        assert_eq!(c.blocks[0].term, Term::Indirect);
        assert!(c.blocks[0].succs.is_empty());
        assert!(!c.reachable()[c.block_of[1]]);
    }

    #[test]
    fn wild_target_recorded() {
        // Raw numeric branch offset pointing far outside the text.
        let c = cfg_of("beq x0, x0, 1000\nhalt\n");
        assert_eq!(c.wild_targets.len(), 1);
        assert_eq!(c.wild_targets[0].0, 0);
    }

    #[test]
    fn rpo_starts_at_entry() {
        let c = cfg_of("beqz x1, a\naddi x2, x2, 1\na:\nhalt\n");
        let order = c.rpo();
        assert_eq!(order[0], c.entry);
        assert_eq!(order.len(), c.blocks.len());
    }
}
