//! Diagnostics: lint codes, severities, and the verification report.

use std::collections::BTreeSet;
use std::fmt;

use vlt_isa::{Program, TEXT_BASE};

macro_rules! define_codes {
    ($(($variant:ident, $name:literal, $sev:ident, $doc:literal)),* $(,)?) => {
        /// Every diagnostic the verifier can emit, identified by a stable
        /// kebab-case name used by the allow mechanism and the `vlint` CLI.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum Code {
            $(#[doc = $doc] $variant),*
        }

        impl Code {
            /// All codes, for `vlint --list-codes`.
            pub const ALL: &'static [Code] = &[$(Code::$variant),*];

            /// The stable kebab-case name.
            pub fn name(self) -> &'static str {
                match self { $(Code::$variant => $name),* }
            }

            /// The default severity.
            pub fn severity(self) -> Severity {
                match self { $(Code::$variant => Severity::$sev),* }
            }

            /// One-line description (for `vlint --list-codes`).
            pub fn describe(self) -> &'static str {
                match self { $(Code::$variant => $doc),* }
            }

            /// Look up a code by name. Accepts `-` or `_` as separators so
            /// both CLI flags (`--allow dead-write`) and program-embedded
            /// allow symbols (`.eq vlint.allow.dead_write, 1`) resolve.
            pub fn from_name(s: &str) -> Option<Code> {
                let norm: String = s.trim().chars()
                    .map(|c| if c == '_' { '-' } else { c.to_ascii_lowercase() })
                    .collect();
                match norm.as_str() { $($name => Some(Code::$variant),)* _ => None }
            }
        }
    };
}

define_codes! {
    (BadEncoding,      "bad-encoding",      Error, "a text word does not decode to any instruction"),
    (UndefRead,        "undef-read",        Error, "register read but never written on any path from entry"),
    (MaybeUndefRead,   "maybe-undef-read",  Warn,  "register read but written on only some paths from entry"),
    (ZeroVl,           "zero-vl",           Error, "`setvl` with a request statically known to be zero (dynamic `ZeroVl` fault)"),
    (BadVltCfg,        "bad-vltcfg",        Error, "`vltcfg` with an operand statically known to be an invalid threads x clusters encoding"),
    (VlReset,          "vl-reset",          Warn,  "vector instruction reachable with `vl` never set by `setvl` (executes at the reset MVL)"),
    (VltcfgClampsVl,   "vltcfg-clamps-vl",  Warn,  "`vltcfg` shrinks MVL below the current `vl` (stale `vl` is silently clamped)"),
    (SetvlDiscardsClamp, "setvl-discards-clamp", Warn, "`setvl` requests more than the partition MVL and discards the clamped result (`rd = x0`)"),
    (MaskReset,        "mask-reset",        Warn,  "masked operation reachable with `vm` never written (reset mask enables every lane)"),
    (DivergentBarrier, "divergent-barrier", Warn,  "`barrier` reachable from only one side of a branch (threads may diverge around the rendezvous)"),
    (DivergentVltcfg,  "divergent-vltcfg",  Warn,  "`vltcfg` reachable from only one side of a branch (threads may configure different partitions)"),
    (OobRead,          "oob-read",          Error, "load from a statically-known address outside the data/stack layout (reads silent zeros)"),
    (OobWrite,         "oob-write",         Error, "store to a statically-known address outside the data/stack layout"),
    (Misaligned,       "misaligned",        Error, "access at a statically-known address not aligned to the element size"),
    (OffEnd,           "off-end",           Error, "execution can fall through past the end of the text segment (dynamic `BadPc` fault)"),
    (BadTarget,        "bad-target",        Error, "branch or jump target outside the text segment"),
    (Unreachable,      "unreachable",       Warn,  "instruction not reachable from the entry point"),
    (DeadWrite,        "dead-write",        Warn,  "register written but the value can never be read afterwards"),
    (IndirectFlow,     "indirect-flow",     Warn,  "`jr`/`jalr` present: indirect control flow is not statically tracked (analysis is partial)"),
    (RaceWw,           "race-ww",           Warn,  "two threads may write overlapping addresses within the same barrier epoch"),
    (RaceRw,           "race-rw",           Warn,  "one thread may read an address another thread writes within the same barrier epoch"),
    (RaceUnknown,      "race-unknown",      Warn,  "access whose footprint the race analysis cannot bound may conflict across threads within an epoch"),
    (DlpInexact,       "dlp-inexact",       Warn,  "the static DLP walk could not stay exact (data-dependent control, indirect flow, or budget): the profile is a partial lower bound"),
    (DlpShortVl,       "dlp-short-vl",      Info,  "parallel region runs vector code at short average VL (<= half MVL): a VLT lane partition recovers the idle lanes"),
    (DlpScalarRegion,  "dlp-scalar-region", Info,  "parallel region executes no vector element operations: scalar VLT threads-on-lanes applies"),
    (DlpStrideConflict, "dlp-stride-conflict", Info, "strided/indexed vector memory access maps many elements to few L2 banks (bank-conflict prone)"),
    (DlpSetvlClamp,    "dlp-setvl-clamp",   Info,  "fixed setvl request exceeds the MVL of a smaller partition and the clamped result register is never read: the phase cannot re-chunk under VLT"),
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Diagnostic severity. `Error` marks defects that produce a dynamic fault
/// or a silently-wrong result; `Warn` marks structural smells and risks;
/// `Info` marks advisory performance observations (the `--dlp` pass) that
/// never affect `vlint`'s exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory observation (performance structure, not a defect).
    Info,
    /// Suspicious but not certainly wrong.
    Warn,
    /// A defect: dynamic fault or silent corruption on some input/path.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: a lint code anchored to a static instruction.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The lint code.
    pub code: Code,
    /// Severity (the code's default; kept explicit for report filtering).
    pub severity: Severity,
    /// Static instruction index into the text section, if anchored.
    pub sidx: Option<usize>,
    /// Disassembly of the offending instruction (empty when unanchored).
    pub disasm: String,
    /// Human-readable explanation.
    pub msg: String,
}

impl Diagnostic {
    /// Byte address of the offending instruction, if anchored.
    pub fn pc(&self) -> Option<u64> {
        self.sidx.map(|i| TEXT_BASE + 4 * i as u64)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(i) = self.sidx {
            write!(f, " {:#010x} #{i}", TEXT_BASE + 4 * i as u64)?;
        }
        if !self.disasm.is_empty() {
            write!(f, " `{}`", self.disasm)?;
        }
        write!(f, ": {}", self.msg)
    }
}

/// Verifier options: allowed (suppressed) lints and layout slack.
#[derive(Debug, Clone)]
pub struct Options {
    /// Lint codes to suppress for this program.
    pub allow: BTreeSet<Code>,
    /// Bytes past the end of the data image that loads may still touch
    /// without an `oob-read`. Unrolled scalar walks deliberately over-read
    /// (the values are unused), so the layout grants a small slack window.
    pub read_slack: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options { allow: BTreeSet::new(), read_slack: 64 }
    }
}

impl Options {
    /// Suppress one lint code.
    pub fn allow(mut self, code: Code) -> Self {
        self.allow.insert(code);
        self
    }

    /// Merge program-embedded allow symbols: a symbol (or `.eq` constant)
    /// named `vlint.allow.<code>` suppresses that code for the program,
    /// e.g. `.eq vlint.allow.dead_write, 1`.
    pub fn with_program_allows(mut self, prog: &Program) -> Self {
        for name in prog.symbols.keys() {
            if let Some(code) = name.strip_prefix("vlint.allow.").and_then(Code::from_name) {
                self.allow.insert(code);
            }
        }
        self
    }
}

/// The outcome of verifying one program.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// All findings, in text order (unanchored findings last).
    pub diags: Vec<Diagnostic>,
    /// Findings suppressed by the allow mechanism.
    pub suppressed: usize,
}

impl Report {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warn-severity findings.
    pub fn warnings(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Warn).count()
    }

    /// Number of info-severity findings.
    pub fn infos(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Info).count()
    }

    /// True when no error-severity findings remain.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// True if some finding with `code` anchors at instruction `sidx`.
    pub fn flags_at(&self, code: Code, sidx: usize) -> bool {
        self.diags.iter().any(|d| d.code == code && d.sidx == Some(sidx))
    }

    /// True if some finding with `code` exists anywhere.
    pub fn flags(&self, code: Code) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// Iterate over error-severity findings.
    pub fn iter_errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| d.severity == Severity::Error)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diags {
            writeln!(f, "{d}")?;
        }
        write!(f, "{} error(s), {} warning(s)", self.errors(), self.warnings())?;
        if self.infos() > 0 {
            write!(f, ", {} note(s)", self.infos())?;
        }
        if self.suppressed > 0 {
            write!(f, ", {} suppressed", self.suppressed)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_names_roundtrip() {
        for &c in Code::ALL {
            assert_eq!(Code::from_name(c.name()), Some(c));
            let underscored = c.name().replace('-', "_");
            assert_eq!(Code::from_name(&underscored), Some(c));
        }
        assert_eq!(Code::from_name("nope"), None);
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
    }

    /// Info findings are advisory: they never make a report unclean and
    /// never count as warnings.
    #[test]
    fn info_findings_are_advisory() {
        let d = Diagnostic {
            code: Code::DlpShortVl,
            severity: Severity::Info,
            sidx: Some(0),
            disasm: String::new(),
            msg: "short".into(),
        };
        let r = Report { diags: vec![d], suppressed: 0 };
        assert!(r.is_clean());
        assert_eq!(r.warnings(), 0);
        assert_eq!(r.infos(), 1);
    }

    #[test]
    fn program_allow_symbols() {
        use vlt_isa::asm::assemble;
        let p = assemble(".eq vlint.allow.dead_write, 1\nhalt\n").unwrap();
        let opts = Options::default().with_program_allows(&p);
        assert!(opts.allow.contains(&Code::DeadWrite));
        assert!(!opts.allow.contains(&Code::OobRead));
    }

    #[test]
    fn diagnostic_display() {
        let d = Diagnostic {
            code: Code::ZeroVl,
            severity: Severity::Error,
            sidx: Some(4),
            disasm: "setvl x0, x3".into(),
            msg: "request is 0".into(),
        };
        let s = d.to_string();
        assert!(s.contains("error[zero-vl]"));
        assert!(s.contains("0x00001010"));
        assert!(s.contains("setvl x0, x3"));
        assert_eq!(d.pc(), Some(TEXT_BASE + 16));
    }
}
