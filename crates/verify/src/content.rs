//! Content-aware analysis support (DESIGN.md §14).
//!
//! The affine footprint machinery reasons about *index expressions*; this
//! module adds the two facilities that let the verifiers reason about
//! *values flowing through memory*:
//!
//! * [`DataHull`] — chunked min/max summaries of the initial data image,
//!   so a vector load over a statically bounded address window folds to a
//!   bounded value hull without rescanning the image on every fixpoint
//!   sweep ([`crate::footprint`]'s `try_vfold`), and [`Overlay`] — the
//!   store-value side of the same idea: the hull of every value a
//!   program's stores may write into a range, built by `races` from the
//!   converged per-thread runs and consulted when a fold's span is not
//!   store-free. Together they make "a store of a known-range value
//!   bounds a later indexed load" a static fact.
//!
//! * [`observe`] — the *epoch-synchronous observed walk*: a concrete
//!   execution under [`vlt_exec::FuncSim`] that records, per thread, the
//!   exact per-(site, barrier-epoch) access *sets* and cross-checks them
//!   for same-epoch conflicts. A conflict-free complete walk certifies the
//!   sets as schedule-independent (see the soundness argument below), so
//!   the race analysis can consume two lemmas from them:
//!
//!   - **partition**: per-epoch hulls that never overlap across threads
//!     (indices confined to per-thread disjoint value ranges) kill the
//!     overlap candidate outright;
//!   - **injectivity/permutation**: hulls that *do* overlap but whose
//!     exact access sets are disjoint — radix's scatter through an
//!     exclusive prefix sum is write-disjoint even though every thread's
//!     destination hull spans the whole output array.
//!
//! # Soundness of the observed walk
//!
//! Programs are deterministic given a schedule; the only nondeterminism is
//! the interleaving of threads between barriers. Induction over barrier
//! epochs: suppose every epoch `< k` of the canonical walk is conflict-free
//! (no same-epoch cross-thread overlap with a write, compared as *sets*,
//! so the claim is order-independent within the epoch). Then memory at the
//! start of epoch `k` is the same under every schedule, each thread's
//! epoch-`k` execution depends only on that state and its own private
//! state, and the epoch-`k` access sets are schedule-independent. A
//! conflict-free *complete* walk therefore yields access sets valid for
//! every interleaving. Any conflict, fault, budget exhaustion, or record
//! overflow makes [`observe`] return `None` — the analysis simply claims
//! nothing and the symbolic diagnostics stand.

use std::collections::BTreeMap;

use vlt_exec::{DynKind, EngineMode, FuncSim, Step};
use vlt_isa::{OpClass, Program, DATA_BASE};

use crate::dlp::SiteBounds;

// ---------------------------------------------------------------------------
// Static half: data-image value hulls and the store-value overlay
// ---------------------------------------------------------------------------

/// Words per summary chunk (64 dwords = 512 bytes).
const CHUNK: usize = 64;

/// Chunked min/max summaries of the initial data image, interpreted as
/// little-endian dwords. `None` chunks contain a word outside `i64` range
/// (the fold machinery never claims a bound for those).
pub(crate) struct DataHull {
    chunks: Vec<Option<(i64, i64)>>,
    words: usize,
}

impl DataHull {
    pub(crate) fn new(data: &[u8]) -> DataHull {
        let words = data.len() / 8;
        let mut chunks = Vec::with_capacity(words.div_ceil(CHUNK));
        for c in 0..words.div_ceil(CHUNK) {
            let mut hull: Option<(i64, i64)> = Some((i64::MAX, i64::MIN));
            for w in (c * CHUNK)..((c + 1) * CHUNK).min(words) {
                let bytes: [u8; 8] = data[w * 8..w * 8 + 8].try_into().unwrap();
                match (i64::try_from(u64::from_le_bytes(bytes)).ok(), &mut hull) {
                    (Some(v), Some((lo, hi))) => {
                        *lo = (*lo).min(v);
                        *hi = (*hi).max(v);
                    }
                    _ => hull = None,
                }
            }
            chunks.push(hull);
        }
        DataHull { chunks, words }
    }

    /// Value hull of every 8-aligned dword whose start address lies in the
    /// inclusive `[lo, hi]` window (absolute addresses). `None` when the
    /// window is empty, touches uninitialized/out-of-image bytes, or
    /// contains a word outside `i64` range. Ignores any stride structure
    /// of the enumerating form — a superset of addresses gives a superset
    /// hull, which is sound.
    pub(crate) fn hull(&self, lo: i64, hi: i64) -> Option<(i64, i64)> {
        let base = DATA_BASE as i64;
        if lo > hi || lo % 8 != 0 || lo < base {
            return None;
        }
        let (w0, w1) = (((lo - base) / 8) as usize, ((hi - base) / 8) as usize);
        if w1 >= self.words {
            return None;
        }
        let (mut vmin, mut vmax) = (i64::MAX, i64::MIN);
        for c in (w0 / CHUNK)..=(w1 / CHUNK) {
            let (lo_c, hi_c) = self.chunks[c]?;
            // Partial chunks at the window edges still use the whole-chunk
            // summary: a wider hull is sound and keeps queries O(chunks).
            vmin = vmin.min(lo_c);
            vmax = vmax.max(hi_c);
        }
        Some((vmin, vmax))
    }
}

/// A value range with optional (absent = unbounded) sides.
pub(crate) type ValRng = (Option<i64>, Option<i64>);

/// The store side of the content lattice: address ranges the program's
/// stores may touch, each with the hull of values the store may write.
/// Built by `races` from converged per-thread runs; consulted by the fold
/// machinery so loads from stored-to ranges yield `join(initial image,
/// intersecting store hulls)` instead of ⊤.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct Overlay {
    /// A store with an unboundable address exists: every byte of memory
    /// may hold an untracked value.
    pub poisoned: bool,
    /// `(addr_lo, addr_hi_exclusive, value hull)` per bounded store.
    pub ranges: Vec<(i64, i64, ValRng)>,
}

impl Overlay {
    /// What the stores may have written into the byte window
    /// `[lo, hi_ex)`:
    ///
    /// * `Ok(None)` — no store can touch the window (the initial image is
    ///   the whole story);
    /// * `Ok(Some(hull))` — the join of every intersecting store's value
    ///   hull;
    /// * `Err(())` — an intersecting store's value is unbounded (or a
    ///   store's address is), so no claim can be made.
    pub(crate) fn query(&self, lo: i64, hi_ex: i64) -> Result<Option<(i64, i64)>, ()> {
        if self.poisoned {
            return Err(());
        }
        let mut acc: Option<(i64, i64)> = None;
        for &(slo, shi, (vlo, vhi)) in &self.ranges {
            if slo < hi_ex && lo < shi {
                let (Some(vlo), Some(vhi)) = (vlo, vhi) else { return Err(()) };
                acc = Some(match acc {
                    None => (vlo, vhi),
                    Some((a, b)) => (a.min(vlo), b.max(vhi)),
                });
            }
        }
        Ok(acc)
    }
}

// ---------------------------------------------------------------------------
// Dynamic half: the epoch-synchronous observed walk
// ---------------------------------------------------------------------------

/// Per-(site, epoch) range lists kept before collapsing to a hull. The
/// cap must comfortably exceed the element count of the scatters we want
/// the permutation lemma to certify — a collapsed hull can only prune,
/// never distinguish interleaved-but-disjoint sets.
const MAX_RANGES: usize = 8192;
/// Per-thread cap on distinct (site, epoch) keys.
const MAX_KEYS: usize = 1 << 16;

/// Insert `[lo, hi)` into a sorted, disjoint, coalesced range list.
fn insert_range(list: &mut Vec<(u64, u64)>, lo: u64, hi: u64) {
    if lo >= hi {
        return;
    }
    // Find the first range whose end reaches `lo` (merge candidate).
    let i = list.partition_point(|&(_, e)| e < lo);
    let mut j = i;
    let (mut lo, mut hi) = (lo, hi);
    while j < list.len() && list[j].0 <= hi {
        lo = lo.min(list[j].0);
        hi = hi.max(list[j].1);
        j += 1;
    }
    list.splice(i..j, [(lo, hi)]);
    if list.len() > MAX_RANGES {
        // Collapse to the hull: an over-approximation is sound both for
        // pruning (superset) and for conflict detection (false conflicts
        // only make `observe` return `None`).
        let hull = (list[0].0, list[list.len() - 1].1);
        list.clear();
        list.push(hull);
    }
}

/// Do two sorted disjoint range lists intersect?
pub(crate) fn ranges_overlap(a: &[(u64, u64)], b: &[(u64, u64)]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i].0 < b[j].1 && b[j].0 < a[i].1 {
            return true;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    false
}

/// Union of sorted disjoint range lists.
fn union_ranges(lists: &[&Vec<(u64, u64)>]) -> Vec<(u64, u64)> {
    let mut all: Vec<(u64, u64)> = lists.iter().flat_map(|l| l.iter().copied()).collect();
    all.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(all.len());
    for (lo, hi) in all {
        match out.last_mut() {
            Some((_, e)) if lo <= *e => *e = (*e).max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

/// Run the program concretely at `threads` threads (interpreter engine,
/// round-robin batched to barriers — the canonical schedule) and return
/// each thread's exact per-(site, barrier-epoch) access sets, or `None`
/// unless the walk completes conflict-free within `budget` steps (see the
/// module docs for why conflict-freedom certifies schedule independence).
pub(crate) fn observe(prog: &Program, threads: usize, budget: u64) -> Option<Vec<SiteBounds>> {
    if threads == 0 || threads > 64 || prog.text.is_empty() {
        return None;
    }
    let mut sim = FuncSim::new(prog, threads).with_engine(EngineMode::Interp);
    let mut epoch = vec![0u64; threads];
    let mut sets: Vec<SiteBounds> = vec![BTreeMap::new(); threads];
    let mut keys = vec![0usize; threads];
    let mut steps = 0u64;
    while !sim.all_halted() {
        let mut progressed = false;
        for t in 0..threads {
            loop {
                let d = match sim.step_thread(t) {
                    Ok(Step::Inst(d)) => d,
                    Ok(Step::AtBarrier | Step::Halted) => break,
                    Err(_) => return None,
                };
                progressed = true;
                steps += 1;
                if steps > budget {
                    return None;
                }
                let sidx = d.sidx as usize;
                match d.kind {
                    DynKind::Barrier => {
                        epoch[t] += 1;
                        break;
                    }
                    DynKind::Halt => break,
                    DynKind::Mem { addr, size } => {
                        record(&mut sets[t], &mut keys[t], sidx, epoch[t], addr, u64::from(size))?;
                    }
                    DynKind::VMem { addrs } => {
                        // One borrow per instruction: copy out the element
                        // addresses (bounded by MAX_VL) before recording.
                        let elems: Vec<u64> = sim.addrs(addrs).to_vec();
                        for a in elems {
                            record(&mut sets[t], &mut keys[t], sidx, epoch[t], a, 8)?;
                        }
                    }
                    _ => {}
                }
            }
        }
        if !progressed && !sim.all_halted() {
            return None; // barrier deadlock: claim nothing
        }
    }

    if conflict_free(&sim, &sets) {
        Some(sets)
    } else {
        None
    }
}

fn record(
    m: &mut SiteBounds,
    keys: &mut usize,
    sidx: usize,
    epoch: u64,
    addr: u64,
    size: u64,
) -> Option<()> {
    let per_epoch = m.entry(sidx).or_default();
    if !per_epoch.contains_key(&epoch) {
        *keys += 1;
        if *keys > MAX_KEYS {
            return None;
        }
    }
    insert_range(per_epoch.entry(epoch).or_default(), addr, addr.checked_add(size)?);
    Some(())
}

/// Same-epoch cross-thread conflict scan over the complete walk: for each
/// epoch, the union of one thread's write ranges must be disjoint from
/// every other thread's read and write unions. Read/read sharing is fine.
fn conflict_free(sim: &FuncSim, sets: &[SiteBounds]) -> bool {
    /// Byte ranges, `(start, end)` exclusive.
    type Ranges = Vec<(u64, u64)>;
    let is_write =
        |sidx: usize| matches!(sim.prog.get(sidx).class, OpClass::Store | OpClass::VStore);
    // Per thread, per epoch: merged write and read unions.
    let mut merged: Vec<BTreeMap<u64, (Ranges, Ranges)>> = Vec::new();
    for m in sets {
        let mut per: BTreeMap<u64, (Vec<&Ranges>, Vec<&Ranges>)> = BTreeMap::new();
        for (&sidx, epochs) in m {
            for (&e, list) in epochs {
                let slot = per.entry(e).or_default();
                if is_write(sidx) {
                    slot.0.push(list);
                } else {
                    slot.1.push(list);
                }
            }
        }
        merged.push(
            per.into_iter().map(|(e, (w, r))| (e, (union_ranges(&w), union_ranges(&r)))).collect(),
        );
    }
    for t1 in 0..merged.len() {
        for t2 in t1 + 1..merged.len() {
            for (e, (w1, r1)) in &merged[t1] {
                let Some((w2, r2)) = merged[t2].get(e) else { continue };
                if ranges_overlap(w1, w2) || ranges_overlap(w1, r2) || ranges_overlap(r1, w2) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlt_isa::asm::assemble;

    #[test]
    fn range_list_coalesces_and_caps() {
        let mut l = Vec::new();
        insert_range(&mut l, 8, 16);
        insert_range(&mut l, 16, 24); // adjacent: coalesce
        insert_range(&mut l, 0, 4);
        assert_eq!(l, vec![(0, 4), (8, 24)]);
        insert_range(&mut l, 4, 8); // bridges the gap
        assert_eq!(l, vec![(0, 24)]);
        for i in 0..2 * MAX_RANGES as u64 {
            insert_range(&mut l, 100 + 16 * i, 108 + 16 * i);
        }
        assert_eq!(l.len(), 1, "saturation collapses to the hull");
    }

    #[test]
    fn overlap_scan() {
        assert!(ranges_overlap(&[(0, 8), (16, 24)], &[(20, 32)]));
        assert!(!ranges_overlap(&[(0, 8), (16, 24)], &[(8, 16), (24, 40)]));
        assert!(!ranges_overlap(&[], &[(0, 8)]));
    }

    #[test]
    fn data_hull_summaries() {
        let mut data = Vec::new();
        for v in [5i64, 3, 1000, 7] {
            data.extend_from_slice(&(v as u64).to_le_bytes());
        }
        let h = DataHull::new(&data);
        let b = DATA_BASE as i64;
        assert_eq!(h.hull(b, b + 24), Some((3, 1000)));
        assert_eq!(h.hull(b, b + 32), None, "off the end");
        assert_eq!(h.hull(b + 4, b + 8), None, "misaligned window");
    }

    #[test]
    fn data_hull_rejects_non_i64_words() {
        let data = u64::MAX.to_le_bytes().to_vec();
        let h = DataHull::new(&data);
        assert_eq!(h.hull(DATA_BASE as i64, DATA_BASE as i64), None);
    }

    #[test]
    fn overlay_queries() {
        let ov = Overlay {
            poisoned: false,
            ranges: vec![(100, 108, (Some(1), Some(5))), (200, 216, (Some(-2), Some(0)))],
        };
        assert_eq!(ov.query(0, 100), Ok(None));
        assert_eq!(ov.query(104, 112), Ok(Some((1, 5))));
        assert_eq!(ov.query(0, 1000), Ok(Some((-2, 5))));
        let unb = Overlay { poisoned: false, ranges: vec![(0, 8, (None, Some(3)))] };
        assert_eq!(unb.query(0, 8), Err(()));
        assert_eq!(unb.query(8, 16), Ok(None));
        assert_eq!(Overlay { poisoned: true, ..Default::default() }.query(0, 0), Err(()));
    }

    #[test]
    fn observe_disjoint_tiles_is_some() {
        let src = ".data\nxs: .space 128\n.text\n\
                   tid x1\nla x2, xs\nslli x3, x1, 3\nadd x2, x2, x3\n\
                   sd x1, 0(x2)\nbarrier\nld x4, 0(x2)\nhalt\n";
        let prog = assemble(src).unwrap();
        let sets = observe(&prog, 2, 100_000).expect("disjoint tiles are conflict-free");
        assert_eq!(sets.len(), 2);
        // Every access either thread makes stays inside its own tile.
        let tile: Vec<Vec<(u64, u64)>> = sets
            .iter()
            .map(|m| {
                let mut all = Vec::new();
                for per in m.values() {
                    for l in per.values() {
                        for &(lo, hi) in l {
                            insert_range(&mut all, lo, hi);
                        }
                    }
                }
                all
            })
            .collect();
        assert!(!tile[0].is_empty() && !tile[1].is_empty());
        assert!(!ranges_overlap(&tile[0], &tile[1]));
    }

    #[test]
    fn observe_same_epoch_conflict_is_none() {
        let src = ".data\nxs: .dword 0\n.text\n\
                   la x2, xs\ntid x1\nsd x1, 0(x2)\nbarrier\nhalt\n";
        let prog = assemble(src).unwrap();
        assert!(observe(&prog, 2, 100_000).is_none(), "same-slot writes conflict");
        assert!(observe(&prog, 1, 100_000).is_some(), "single thread cannot conflict");
    }

    #[test]
    fn observe_barrier_separated_flag_is_some() {
        // The `cross_thread_steering_defeats_bounds` shape: the symbolic
        // walker refuses it, but the observed walk certifies it — the
        // communication is barrier-separated.
        let src = ".data\nflag: .dword 0\n.text\n\
                   tid x1\nla x2, flag\nbne x1, x0, reader\n\
                   li x3, 1\nsd x3, 0(x2)\nbarrier\nhalt\n\
                   reader:\nbarrier\nld x4, 0(x2)\nbne x4, x0, done\ndone:\nhalt\n";
        let prog = assemble(src).unwrap();
        assert!(observe(&prog, 2, 100_000).is_some());
    }

    #[test]
    fn observe_budget_and_faults_give_none() {
        let p = assemble("loop:\nj loop\n").unwrap();
        assert!(observe(&p, 1, 1000).is_none());
        let p2 = assemble("jr x5\n").unwrap(); // wild jump faults
        assert!(observe(&p2, 1, 1000).is_none());
    }
}
