//! Assemble → disassemble → reassemble round-trip over the whole ISA.
//!
//! Every op, in every format, masked and unmasked, must disassemble to
//! text the assembler accepts and re-encode to the identical word. This
//! is the contract `vlint` diagnostics rely on when they quote an
//! instruction back at the user.

use proptest::prelude::*;
use vlt_isa::asm::assemble;
use vlt_isa::{decode, disasm, encode, Format, Inst, IsaError, Op};

/// Re-assemble one instruction's disassembly and return the single word.
fn reassemble(inst: &Inst) -> u32 {
    let text = disasm(inst);
    let p = assemble(&text).unwrap_or_else(|e| panic!("`{text}` did not reassemble: {e}"));
    assert_eq!(p.text.len(), 1, "`{text}` assembled to {} words", p.text.len());
    p.text[0]
}

/// A representative immediate that exercises sign extension per format.
fn imm_for(f: Format) -> i32 {
    match f {
        Format::I | Format::B => -168,
        Format::U | Format::UI => -26_000,
        Format::J => 99_999,
        _ => 0,
    }
}

#[test]
fn every_op_roundtrips_through_text() {
    for &op in Op::ALL {
        let candidate =
            Inst { op, rd: 5, rs1: 6, rs2: 7, imm: imm_for(op.format()), masked: false };
        // encode/decode normalizes fields the format does not carry.
        let word = encode(&candidate).unwrap_or_else(|e| panic!("{op:?}: {e}"));
        let inst = decode(word).unwrap();
        assert_eq!(reassemble(&inst), word, "{op:?} text roundtrip changed the encoding");
    }
}

#[test]
fn every_maskable_op_roundtrips_masked() {
    let mut covered = 0;
    for &op in Op::ALL {
        if !op.maskable() {
            continue;
        }
        covered += 1;
        let candidate = Inst { op, rd: 5, rs1: 6, rs2: 7, imm: 0, masked: true };
        let word = encode(&candidate).unwrap();
        let inst = decode(word).unwrap();
        assert!(inst.masked, "{op:?} lost the mask bit through decode");
        assert_eq!(reassemble(&inst), word, "{op:?} masked roundtrip changed the encoding");
    }
    assert!(covered > 20, "only {covered} maskable ops — sig table changed?");
}

#[test]
fn mask_flag_rejected_on_scalar_ops() {
    for op in [Op::Add, Op::Fadd, Op::Ld, Op::Fsqrt] {
        let inst = Inst { op, rd: 1, rs1: 2, rs2: 3, imm: 0, masked: true };
        assert!(
            matches!(encode(&inst), Err(IsaError::BadMask(_))),
            "{op:?} must not encode with a mask flag"
        );
    }
}

#[test]
fn stray_mask_bit_ignored_on_scalar_decode() {
    // `add x1, x2, x3` with bit 8 (the mask bit) forced on: the decoder
    // must not invent a masked scalar instruction the assembler could
    // never write (and disassembly would then fail to reassemble).
    let clean = encode(&Inst::r(Op::Add, 1, 2, 3)).unwrap();
    let dirty = clean | (1 << 8);
    let inst = decode(dirty).unwrap();
    assert!(!inst.masked);
    assert_eq!(disasm(&inst), "add x1, x2, x3");
}

proptest! {
    /// Any decodable word must survive text: decode → disasm → assemble
    /// gives back an instruction with the identical canonical encoding.
    #[test]
    fn decoded_words_survive_text(word in any::<u32>()) {
        if let Ok(inst) = decode(word) {
            let canonical = encode(&inst).unwrap();
            prop_assert_eq!(reassemble(&inst), canonical);
        }
    }
}
