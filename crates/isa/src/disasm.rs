//! Disassembler: turn decoded instructions back into assembler syntax.
//!
//! The output re-assembles to the same encoding (modulo labels: PC-relative
//! targets are printed as numeric word offsets, which the assembler accepts).

use crate::inst::Inst;
use crate::opcode::{Format, Op, OperandSig};
#[allow(unused_imports)]
use Op as _OpKeep;

/// Render one instruction in assembler syntax.
pub fn disasm(inst: &Inst) -> String {
    let op = inst.op;
    let sig = op.sig();
    if sig.is_empty() {
        return op.mnemonic().to_string();
    }

    let mut parts: Vec<String> = Vec::with_capacity(sig.len() + 1);
    // Register fields in positional order, mirroring the assembler.
    let regs: [u8; 3] = match op.format() {
        Format::B => [inst.rs1, inst.rs2, 0],
        Format::Rs => [inst.rs1, 0, 0],
        Format::RR0 => [inst.rs1, inst.rs2, 0],
        _ => [inst.rd, inst.rs1, inst.rs2],
    };
    let mut slot = 0usize;
    for k in sig {
        match k {
            OperandSig::Ri => {
                parts.push(format!("x{}", regs[slot]));
                slot += 1;
            }
            OperandSig::Rf => {
                parts.push(format!("f{}", regs[slot]));
                slot += 1;
            }
            OperandSig::Rv => {
                parts.push(format!("v{}", regs[slot]));
                slot += 1;
            }
            OperandSig::Imm | OperandSig::Lab => parts.push(inst.imm.to_string()),
            OperandSig::Mem => parts.push(format!("{}(x{})", inst.imm, inst.rs1)),
        }
    }
    if inst.masked {
        parts.push("vm".to_string());
    }
    format!("{} {}", op.mnemonic(), parts.join(", "))
}

/// Disassemble a full text segment with addresses.
pub fn disasm_text(text: &[u32], base: u64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, &w) in text.iter().enumerate() {
        let addr = base + 4 * i as u64;
        match crate::encode::decode(w) {
            Ok(inst) => writeln!(out, "{addr:#010x}: {}", disasm(&inst)).unwrap(),
            Err(_) => writeln!(out, "{addr:#010x}: .word {w:#010x}").unwrap(),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::encode::decode;

    #[test]
    fn simple_forms() {
        let i = Inst::r(Op::Add, 1, 2, 3);
        assert_eq!(disasm(&i), "add x1, x2, x3");
        let i = Inst::i(Op::Ld, 4, 30, -8);
        assert_eq!(disasm(&i), "ld x4, -8(x30)");
        let i = Inst::sys(Op::Barrier);
        assert_eq!(disasm(&i), "barrier");
        let i = Inst::r(Op::VfmaVV, 1, 2, 3).with_mask();
        assert_eq!(disasm(&i), "vfma.vv v1, v2, v3, vm");
    }

    #[test]
    fn roundtrips_through_assembler() {
        let src = r#"
            add     x1, x2, x3
            addi    x1, x2, -100
            lui     x5, 1234
            ld      x1, 8(x2)
            fsd     f3, -16(sp)
            fadd    f1, f2, f3
            fcvt.f.x f1, x2
            setvl   x1, x2
            vld     v1, x2
            vlds    v1, x2, x3
            vfma.vs v1, v2, f3, vm
            vseq.vv v1, v2
            vextract x1, v2, x3
            vredsum x1, v2
            barrier
            vltcfg  x1
            halt
        "#;
        let p = assemble(src).unwrap();
        for &w in &p.text {
            let inst = decode(w).unwrap();
            let text = disasm(&inst);
            let p2 = assemble(&text).unwrap();
            assert_eq!(p2.text.len(), 1, "`{text}` did not reassemble to one word");
            assert_eq!(p2.text[0], w, "`{text}` changed encoding");
        }
    }

    #[test]
    fn text_listing() {
        let p = assemble("nop\nhalt\n").unwrap();
        let listing = disasm_text(&p.text, crate::program::TEXT_BASE);
        assert!(listing.contains("nop"));
        assert!(listing.contains("halt"));
        assert!(listing.contains("0x00001000"));
    }
}
