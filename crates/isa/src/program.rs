//! Assembled programs and the simulated address-space layout.

use std::collections::HashMap;

use crate::encode::decode;
use crate::inst::Inst;

/// Base address of the text segment. Instructions occupy 4 bytes each.
pub const TEXT_BASE: u64 = 0x0000_1000;
/// Base address of the data segment.
pub const DATA_BASE: u64 = 0x0010_0000;
/// Base of the per-thread stacks; thread `t` gets
/// `STACK_BASE + t * STACK_SIZE` as its stack top (stacks grow down).
/// Kept below `2^31` so every address materializes with a two-instruction
/// `lui`+`ori` sequence.
pub const STACK_BASE: u64 = 0x4000_0000;
/// Bytes of stack per thread.
pub const STACK_SIZE: u64 = 0x10_0000;

/// An assembled program: encoded text, initial data image, and symbols.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Encoded instructions; instruction `i` lives at `TEXT_BASE + 4*i`.
    pub text: Vec<u32>,
    /// Initial bytes of the data segment, loaded at [`DATA_BASE`].
    pub data: Vec<u8>,
    /// Label name to byte address (text labels) or data address.
    pub symbols: HashMap<String, u64>,
    /// Entry point address (defaults to [`TEXT_BASE`]).
    pub entry: u64,
}

impl Program {
    /// Create an empty program with the default entry point.
    pub fn new() -> Self {
        Program { text: Vec::new(), data: Vec::new(), symbols: HashMap::new(), entry: TEXT_BASE }
    }

    /// The address one past the last instruction.
    pub fn text_end(&self) -> u64 {
        TEXT_BASE + 4 * self.text.len() as u64
    }

    /// Decode the instruction at byte address `pc`, if in range.
    pub fn fetch(&self, pc: u64) -> Option<Inst> {
        let idx = self.index_of(pc)?;
        decode(self.text[idx]).ok()
    }

    /// Map a byte address to a text index.
    pub fn index_of(&self, pc: u64) -> Option<usize> {
        if pc < TEXT_BASE || !pc.is_multiple_of(4) {
            return None;
        }
        let idx = ((pc - TEXT_BASE) / 4) as usize;
        if idx < self.text.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// Look up a symbol's address.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Decode the whole text segment (panics on malformed words; assembled
    /// programs are always well-formed).
    pub fn decoded(&self) -> Vec<Inst> {
        self.text.iter().map(|&w| decode(w).expect("well-formed text")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::opcode::Op;

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberate layout sanity checks
    fn layout_is_disjoint() {
        assert!(TEXT_BASE < DATA_BASE);
        // Generous text budget before data:
        assert!(DATA_BASE - TEXT_BASE >= 4 * 1024);
        assert!(DATA_BASE < STACK_BASE);
    }

    #[test]
    fn fetch_and_index() {
        let mut p = Program::new();
        p.text.push(encode(&Inst::r(Op::Add, 1, 2, 3)).unwrap());
        p.text.push(encode(&Inst::sys(Op::Halt)).unwrap());
        assert_eq!(p.fetch(TEXT_BASE).unwrap().op, Op::Add);
        assert_eq!(p.fetch(TEXT_BASE + 4).unwrap().op, Op::Halt);
        assert!(p.fetch(TEXT_BASE + 8).is_none());
        assert!(p.fetch(TEXT_BASE + 2).is_none());
        assert!(p.fetch(0).is_none());
        assert_eq!(p.text_end(), TEXT_BASE + 8);
    }
}
