//! Binary encoding and decoding of instructions to/from 32-bit words.

use crate::error::IsaError;
use crate::inst::Inst;
use crate::opcode::{Format, Op};

const MASK_BIT: u32 = 1 << 8;

fn field(v: u8, shift: u32) -> u32 {
    ((v as u32) & 0x1F) << shift
}

fn check_signed(op: Op, imm: i64, bits: u32) -> Result<u32, IsaError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if imm < min || imm > max {
        return Err(IsaError::ImmOutOfRange { op: op.mnemonic(), imm, bits });
    }
    Ok((imm as u32) & ((1u32 << bits) - 1))
}

fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

/// Encode a decoded instruction into its 32-bit word.
///
/// Fails if the immediate does not fit the format's field, or a register
/// field exceeds 31.
pub fn encode(inst: &Inst) -> Result<u32, IsaError> {
    for r in [inst.rd, inst.rs1, inst.rs2] {
        if r >= 32 {
            return Err(IsaError::BadRegister(r));
        }
    }
    let op = inst.op;
    if inst.masked && !op.maskable() {
        return Err(IsaError::BadMask(op.mnemonic()));
    }
    let base = (op as u8 as u32) << 24;
    let m = if inst.masked { MASK_BIT } else { 0 };
    let w = match op.format() {
        Format::R0 => base,
        Format::R1 => base | field(inst.rd, 19),
        Format::Rs => base | field(inst.rs1, 14),
        Format::R2 => base | field(inst.rd, 19) | field(inst.rs1, 14) | m,
        Format::R => base | field(inst.rd, 19) | field(inst.rs1, 14) | field(inst.rs2, 9) | m,
        Format::RR0 => base | field(inst.rs1, 14) | field(inst.rs2, 9),
        Format::I => {
            base | field(inst.rd, 19) | field(inst.rs1, 14) | check_signed(op, inst.imm as i64, 14)?
        }
        Format::U => base | field(inst.rd, 19) | check_signed(op, inst.imm as i64, 19)?,
        Format::UI => base | check_signed(op, inst.imm as i64, 19)?,
        Format::B => {
            base | field(inst.rs1, 19)
                | field(inst.rs2, 14)
                | check_signed(op, inst.imm as i64, 14)?
        }
        Format::J => base | check_signed(op, inst.imm as i64, 24)?,
    };
    Ok(w)
}

/// Decode a 32-bit word back into an instruction.
pub fn decode(word: u32) -> Result<Inst, IsaError> {
    let opb = (word >> 24) as u8;
    let op = Op::from_u8(opb).ok_or(IsaError::BadOpcode(opb))?;
    let rd = ((word >> 19) & 0x1F) as u8;
    let rs1 = ((word >> 14) & 0x1F) as u8;
    let rs2 = ((word >> 9) & 0x1F) as u8;
    // The mask bit is meaningful only on maskable (vector R/R2) ops;
    // scalar encodings treat bit 8 as don't-care so a stray bit cannot
    // conjure an `Inst` the assembler could never produce.
    let masked = op.maskable() && word & MASK_BIT != 0;
    let inst = match op.format() {
        Format::R0 => Inst::sys(op),
        Format::R1 => Inst { op, rd, rs1: 0, rs2: 0, imm: 0, masked: false },
        Format::Rs => Inst { op, rd: 0, rs1, rs2: 0, imm: 0, masked: false },
        Format::R2 => Inst { op, rd, rs1, rs2: 0, imm: 0, masked },
        Format::R => Inst { op, rd, rs1, rs2, imm: 0, masked },
        Format::RR0 => Inst { op, rd: 0, rs1, rs2, imm: 0, masked: false },
        Format::I => Inst { op, rd, rs1, rs2: 0, imm: sext(word & 0x3FFF, 14), masked: false },
        Format::U => Inst { op, rd, rs1: 0, rs2: 0, imm: sext(word & 0x7FFFF, 19), masked: false },
        Format::UI => {
            Inst { op, rd: 0, rs1: 0, rs2: 0, imm: sext(word & 0x7FFFF, 19), masked: false }
        }
        Format::B => {
            let brs1 = ((word >> 19) & 0x1F) as u8;
            let brs2 = ((word >> 14) & 0x1F) as u8;
            Inst { op, rd: 0, rs1: brs1, rs2: brs2, imm: sext(word & 0x3FFF, 14), masked: false }
        }
        Format::J => {
            Inst { op, rd: 0, rs1: 0, rs2: 0, imm: sext(word & 0xFF_FFFF, 24), masked: false }
        }
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::{Format, Op};
    use proptest::prelude::*;

    #[test]
    fn roundtrip_basic() {
        let cases = [
            Inst::r(Op::Add, 1, 2, 3),
            Inst::i(Op::Addi, 4, 5, -100),
            Inst::i(Op::Ld, 7, 30, 8191),
            Inst::i(Op::Sd, 7, 30, -8192),
            Inst { op: Op::Lui, rd: 9, rs1: 0, rs2: 0, imm: -262144, masked: false },
            Inst { op: Op::Beq, rd: 0, rs1: 3, rs2: 4, imm: -20, masked: false },
            Inst { op: Op::Jal, rd: 0, rs1: 0, rs2: 0, imm: 100000, masked: false },
            Inst::r(Op::VfmaVV, 10, 11, 12).with_mask(),
            Inst::r2(Op::Vld, 1, 2),
            Inst::sys(Op::Barrier),
            Inst { op: Op::VltCfg, rd: 0, rs1: 17, rs2: 0, imm: 0, masked: false },
        ];
        for c in &cases {
            let w = encode(c).unwrap();
            assert_eq!(&decode(w).unwrap(), c, "roundtrip failed for {c:?}");
        }
    }

    #[test]
    fn imm_out_of_range() {
        let i = Inst::i(Op::Addi, 1, 2, 8192);
        assert!(matches!(encode(&i), Err(IsaError::ImmOutOfRange { .. })));
        let i = Inst::i(Op::Addi, 1, 2, -8193);
        assert!(matches!(encode(&i), Err(IsaError::ImmOutOfRange { .. })));
    }

    #[test]
    fn bad_register_rejected() {
        let i = Inst::r(Op::Add, 32, 0, 0);
        assert!(matches!(encode(&i), Err(IsaError::BadRegister(32))));
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(matches!(decode(0xFF00_0000), Err(IsaError::BadOpcode(0xFF))));
    }

    fn arb_inst() -> impl Strategy<Value = Inst> {
        (0..Op::ALL.len(), 0u8..32, 0u8..32, 0u8..32, any::<i16>(), any::<bool>()).prop_map(
            |(opi, rd, rs1, rs2, imm16, masked)| {
                let op = Op::ALL[opi];
                // Clamp the immediate to the field width for the format.
                let imm = match op.format() {
                    Format::I | Format::B => (imm16 as i32).clamp(-8192, 8191),
                    Format::U | Format::UI => (imm16 as i32).clamp(-262144, 262143),
                    Format::J => imm16 as i32,
                    _ => 0,
                };
                let mut i = Inst { op, rd, rs1, rs2, imm, masked };
                // Normalize fields the format does not carry, mirroring decode.
                match op.format() {
                    Format::R0 => i = Inst::sys(op),
                    Format::R1 => {
                        i.rs1 = 0;
                        i.rs2 = 0;
                        i.masked = false;
                    }
                    Format::Rs => {
                        i.rd = 0;
                        i.rs2 = 0;
                        i.masked = false;
                    }
                    Format::R2 => i.rs2 = 0,
                    Format::R => {}
                    Format::RR0 => {
                        i.rd = 0;
                        i.masked = false;
                    }
                    Format::I => {
                        i.rs2 = 0;
                        i.masked = false;
                    }
                    Format::U => {
                        i.rs1 = 0;
                        i.rs2 = 0;
                        i.masked = false;
                    }
                    Format::UI => {
                        i.rd = 0;
                        i.rs1 = 0;
                        i.rs2 = 0;
                        i.masked = false;
                    }
                    Format::B => {
                        i.rd = 0;
                        i.masked = false;
                    }
                    Format::J => {
                        i.rd = 0;
                        i.rs1 = 0;
                        i.rs2 = 0;
                        i.masked = false;
                    }
                }
                if !op.maskable() {
                    i.masked = false;
                }
                i
            },
        )
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(inst in arb_inst()) {
            let w = encode(&inst).unwrap();
            prop_assert_eq!(decode(w).unwrap(), inst);
        }

        #[test]
        fn decode_never_panics(word in any::<u32>()) {
            let _ = decode(word);
        }

        #[test]
        fn decode_encode_roundtrip(word in any::<u32>()) {
            // Any word that decodes must re-encode to itself modulo
            // don't-care bits, and then roundtrip stably.
            if let Ok(inst) = decode(word) {
                let w2 = encode(&inst).unwrap();
                prop_assert_eq!(decode(w2).unwrap(), inst);
            }
        }
    }
}
