//! Register name types and a unified register reference for dependence
//! tracking.

use std::fmt;

macro_rules! reg_type {
    ($name:ident, $prefix:literal, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u8);

        impl $name {
            /// Construct, panicking if the index is out of range.
            pub fn new(i: u8) -> Self {
                assert!(i < 32, concat!($prefix, " register index out of range"));
                $name(i)
            }

            /// The raw index, `0..32`.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fmt_display_reg!($prefix);
        }
    };
}

macro_rules! fmt_display_reg {
    ($prefix:literal) => {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}{}", $prefix, self.0)
        }
    };
}

reg_type!(IReg, "x", "Integer scalar register `x0`..`x31`; `x0` reads as zero.");
reg_type!(FReg, "f", "Floating-point scalar register `f0`..`f31`.");
reg_type!(VReg, "v", "Vector register `v0`..`v31`.");

impl IReg {
    /// The hardwired zero register.
    pub const ZERO: IReg = IReg(0);
    /// Link register written by `jal`/`jalr` (convention: `x31`).
    pub const RA: IReg = IReg(31);
    /// Stack pointer (convention: `x30`).
    pub const SP: IReg = IReg(30);
}

/// A reference to any piece of architectural register state, used for
/// dependence tracking in the timing models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegRef {
    /// Integer scalar register.
    I(u8),
    /// Floating-point scalar register.
    F(u8),
    /// Vector register.
    V(u8),
    /// The vector-length register.
    Vl,
    /// The vector-mask register.
    Vm,
}

impl RegRef {
    /// True if this is scalar-unit state (integer/FP register).
    pub fn is_scalar(self) -> bool {
        matches!(self, RegRef::I(_) | RegRef::F(_))
    }

    /// True if this is vector-unit state (vector register, VL, or mask).
    pub fn is_vector(self) -> bool {
        !self.is_scalar()
    }
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegRef::I(i) => write!(f, "x{i}"),
            RegRef::F(i) => write!(f, "f{i}"),
            RegRef::V(i) => write!(f, "v{i}"),
            RegRef::Vl => write!(f, "vl"),
            RegRef::Vm => write!(f, "vm"),
        }
    }
}

/// Parse a register token (`x7`, `f31`, `v0`) into its class and index.
pub fn parse_reg(tok: &str) -> Option<(char, u8)> {
    let mut chars = tok.chars();
    let class = chars.next()?;
    if !matches!(class, 'x' | 'f' | 'v') {
        return None;
    }
    let idx: u8 = chars.as_str().parse().ok()?;
    if idx < 32 {
        Some((class, idx))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(IReg(3).to_string(), "x3");
        assert_eq!(FReg(31).to_string(), "f31");
        assert_eq!(VReg(0).to_string(), "v0");
        assert_eq!(RegRef::Vl.to_string(), "vl");
    }

    #[test]
    fn parse_reg_tokens() {
        assert_eq!(parse_reg("x7"), Some(('x', 7)));
        assert_eq!(parse_reg("f31"), Some(('f', 31)));
        assert_eq!(parse_reg("v0"), Some(('v', 0)));
        assert_eq!(parse_reg("x32"), None);
        assert_eq!(parse_reg("y1"), None);
        assert_eq!(parse_reg("x"), None);
    }

    #[test]
    fn regref_classes() {
        assert!(RegRef::I(1).is_scalar());
        assert!(RegRef::F(1).is_scalar());
        assert!(RegRef::V(1).is_vector());
        assert!(RegRef::Vl.is_vector());
        assert!(RegRef::Vm.is_vector());
    }

    #[test]
    #[should_panic]
    fn reg_out_of_range_panics() {
        IReg::new(32);
    }
}
