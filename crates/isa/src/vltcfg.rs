//! Hierarchical `vltcfg` operand encoding (threads × clusters).
//!
//! `vltcfg` reads its configuration from a scalar register, so the
//! hierarchy is packed into the register *value*, not the instruction
//! word:
//!
//! ```text
//! bits  0..8   threads   — VLT vector threads (1, 2, 4, or 8)
//! bits  8..16  clusters  — lane clusters the threads spread over
//!                          (0 = unspecified, or 1, 2, 4, 8)
//! bits 16..64  reserved  — must be zero
//! ```
//!
//! A plain thread count (`vltcfg x; li x, 4`) is the degenerate encoding
//! with `clusters == 0`: programs written for the single-cluster machine
//! keep their exact historical semantics (`mvl = MAX_VL / threads`). A
//! nonzero cluster count must not exceed the thread count — each vector
//! thread lives in exactly one cluster, so `threads / clusters` threads
//! share each cluster's register file and the per-thread maximum vector
//! length grows to `MAX_VL * clusters / threads`.
//!
//! ```
//! use vlt_isa::vltcfg::{operand, unpack, effective_mvl, Hierarchy};
//! use vlt_isa::MAX_VL;
//!
//! // 8 threads across 4 clusters: 2 threads per cluster, mvl = 32.
//! let v = operand(8, 4);
//! let h = unpack(v).unwrap();
//! assert_eq!(h, Hierarchy { threads: 8, clusters: 4 });
//! assert_eq!(effective_mvl(MAX_VL, h), 32);
//!
//! // The legacy flat encoding is the identity on small thread counts.
//! assert_eq!(operand(4, 0), 4);
//! assert_eq!(effective_mvl(MAX_VL, unpack(4).unwrap()), 16);
//! ```

/// A decoded `vltcfg` operand: the requested partition hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hierarchy {
    /// VLT vector threads (1, 2, 4, or 8).
    pub threads: u8,
    /// Lane clusters the threads spread over; `0` means "unspecified" —
    /// the machine picks its default (all clusters it can use).
    pub clusters: u8,
}

/// Pack a `(threads, clusters)` hierarchy into the `vltcfg` register
/// operand. `clusters == 0` produces the legacy flat encoding (the raw
/// thread count). Panics on a hierarchy [`unpack`] would reject, so
/// generators fail at build time instead of faulting mid-simulation.
pub fn operand(threads: u8, clusters: u8) -> u64 {
    let v = threads as u64 | ((clusters as u64) << 8);
    assert!(
        unpack(v).is_some(),
        "invalid vltcfg hierarchy: {threads} threads x {clusters} clusters"
    );
    v
}

/// Decode and validate a `vltcfg` register operand. `None` is a dynamic
/// fault (`ExecError::BadVltCfg` in the functional simulator): a thread
/// count outside {1, 2, 4, 8}, a cluster count outside {0, 1, 2, 4, 8},
/// more clusters than threads, or set reserved bits.
pub fn unpack(v: u64) -> Option<Hierarchy> {
    if v >> 16 != 0 {
        return None;
    }
    let threads = (v & 0xff) as u8;
    let clusters = ((v >> 8) & 0xff) as u8;
    if !matches!(threads, 1 | 2 | 4 | 8) {
        return None;
    }
    if !matches!(clusters, 0 | 1 | 2 | 4 | 8) || clusters > threads {
        return None;
    }
    Some(Hierarchy { threads, clusters })
}

/// The per-thread maximum vector length a hierarchy grants, for a machine
/// with `max_vl`-element architectural vector registers. Each cluster
/// holds a full register file, shared by the `threads / clusters` threads
/// it hosts; the unspecified (`clusters == 0`) encoding is the
/// conservative single-cluster split `max_vl / threads`.
pub fn effective_mvl(max_vl: usize, h: Hierarchy) -> usize {
    let c = h.clusters.max(1) as usize;
    (max_vl * c / h.threads as usize).min(max_vl).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MAX_VL;

    #[test]
    fn flat_encoding_round_trips() {
        for t in [1u8, 2, 4, 8] {
            assert_eq!(operand(t, 0), t as u64);
            let h = unpack(t as u64).unwrap();
            assert_eq!(h, Hierarchy { threads: t, clusters: 0 });
            assert_eq!(effective_mvl(MAX_VL, h), MAX_VL / t as usize);
        }
    }

    #[test]
    fn hierarchical_mvl_scales_with_clusters() {
        assert_eq!(effective_mvl(MAX_VL, unpack(operand(8, 8)).unwrap()), 64);
        assert_eq!(effective_mvl(MAX_VL, unpack(operand(8, 2)).unwrap()), 16);
        assert_eq!(effective_mvl(MAX_VL, unpack(operand(4, 4)).unwrap()), 64);
        assert_eq!(effective_mvl(MAX_VL, unpack(operand(2, 1)).unwrap()), 32);
    }

    #[test]
    fn invalid_operands_are_rejected() {
        assert!(unpack(0).is_none()); // zero threads
        assert!(unpack(3).is_none()); // non-power-of-two threads
        assert!(unpack(16).is_none()); // threads > 8
        assert!(unpack(1 | (2 << 8)).is_none()); // clusters > threads
        assert!(unpack(2 | (3 << 8)).is_none()); // non-power-of-two clusters
        assert!(unpack(4 | (1 << 16)).is_none()); // reserved bits set
    }

    #[test]
    #[should_panic]
    fn operand_panics_on_invalid_hierarchy() {
        operand(2, 4);
    }
}
