//! A two-pass assembler for the VLT ISA.
//!
//! Pass 1 parses every line, expands pseudo-instructions, lays out the data
//! segment, and assigns label addresses. Pass 2 resolves label fixups
//! (PC-relative branch/jump offsets and `%hi`/`%lo`-style address halves for
//! `la`) and encodes the final 32-bit words.
//!
//! ## Syntax
//!
//! * Comments: `#` or `//` to end of line.
//! * Sections: `.text` (default) and `.data`.
//! * Labels: `name:` — may share a line with a statement.
//! * Constants: `.eq NAME, expr` — must be defined before use.
//! * Data: `.dword`, `.word`, `.byte`, `.double`, `.zero`/`.space`, `.align`.
//! * Masked vector ops take a trailing `, vm` operand: `vadd.vv v1, v2, v3, vm`.
//! * Pseudo-instructions: `li`, `la`, `mv`, `neg`, `beqz`, `bnez`, `ble`,
//!   `bgt`, `call`, `ret`.

mod expr;
mod pseudo;

use std::collections::HashMap;

use crate::encode::encode;
use crate::error::IsaError;
use crate::inst::Inst;
use crate::opcode::{Format, Op, OperandSig};
use crate::program::{Program, DATA_BASE, TEXT_BASE};

pub use expr::eval;

/// How an instruction's immediate gets patched in pass 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Fixup {
    /// PC-relative word offset to a label (branches and jumps).
    Rel(String),
    /// High 19 bits of a symbol address: `addr >> 13` (arithmetic).
    Hi(String),
    /// Low 13 bits of a symbol address: `addr & 0x1fff`.
    Lo(String),
}

/// A pass-1 instruction awaiting encoding.
#[derive(Debug, Clone)]
struct Pending {
    line: usize,
    inst: Inst,
    fixup: Option<Fixup>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// Assemble source text into a [`Program`].
pub fn assemble(src: &str) -> Result<Program, IsaError> {
    Assembler::default().run(src)
}

#[derive(Default)]
struct Assembler {
    consts: HashMap<String, i64>,
    symbols: HashMap<String, u64>,
    pending: Vec<Pending>,
    data: Vec<u8>,
    section: Option<Section>,
}

impl Assembler {
    fn run(mut self, src: &str) -> Result<Program, IsaError> {
        // Pass 1: parse, expand, lay out.
        for (i, raw) in src.lines().enumerate() {
            let line = i + 1;
            let stripped = strip_comment(raw).trim();
            if stripped.is_empty() {
                continue;
            }
            self.statement(stripped, line)?;
        }

        // Pass 2: resolve fixups and encode.
        let mut text = Vec::with_capacity(self.pending.len());
        for (idx, p) in self.pending.iter().enumerate() {
            let mut inst = p.inst;
            if let Some(fix) = &p.fixup {
                let name = match fix {
                    Fixup::Rel(n) | Fixup::Hi(n) | Fixup::Lo(n) => n,
                };
                let addr = *self
                    .symbols
                    .get(name)
                    .ok_or_else(|| IsaError::asm(p.line, format!("undefined label `{name}`")))?;
                inst.imm = match fix {
                    Fixup::Rel(_) => {
                        let pc = TEXT_BASE + 4 * idx as u64;
                        ((addr as i64 - pc as i64) / 4) as i32
                    }
                    Fixup::Hi(_) => ((addr as i64) >> 13) as i32,
                    Fixup::Lo(_) => (addr & 0x1FFF) as i32,
                };
            }
            text.push(encode(&inst).map_err(|e| match e {
                IsaError::ImmOutOfRange { op, imm, bits } => IsaError::asm(
                    p.line,
                    format!("immediate {imm} out of range for `{op}` ({bits} bits)"),
                ),
                other => other,
            })?);
        }

        let mut symbols = self.symbols;
        for (k, v) in &self.consts {
            symbols.entry(k.clone()).or_insert(*v as u64);
        }
        Ok(Program { text, data: self.data, symbols, entry: TEXT_BASE })
    }

    fn statement(&mut self, mut s: &str, line: usize) -> Result<(), IsaError> {
        // Peel off leading labels.
        while let Some(colon) = find_label(s) {
            let (label, rest) = s.split_at(colon);
            let label = label.trim();
            if !is_ident(label) {
                return Err(IsaError::asm(line, format!("bad label `{label}`")));
            }
            let addr = match self.cur_section() {
                Section::Text => TEXT_BASE + 4 * self.pending.len() as u64,
                Section::Data => DATA_BASE + self.data.len() as u64,
            };
            if self.symbols.insert(label.to_string(), addr).is_some() {
                return Err(IsaError::asm(line, format!("duplicate label `{label}`")));
            }
            s = rest[1..].trim();
            if s.is_empty() {
                return Ok(());
            }
        }

        if let Some(rest) = s.strip_prefix('.') {
            return self.directive(rest, line);
        }

        let (mnemonic, operands) = split_mnemonic(s);
        if self.cur_section() != Section::Text {
            return Err(IsaError::asm(line, "instruction outside .text section"));
        }
        let ops: Vec<&str> = if operands.is_empty() { vec![] } else { split_operands(operands) };

        if pseudo::is_pseudo(mnemonic) {
            let expanded = pseudo::expand(mnemonic, &ops, &self.consts, line)?;
            for (inst, fixup) in expanded {
                self.pending.push(Pending { line, inst, fixup });
            }
            return Ok(());
        }

        let op = Op::from_mnemonic(mnemonic)
            .ok_or_else(|| IsaError::asm(line, format!("unknown mnemonic `{mnemonic}`")))?;
        let (inst, fixup) = parse_operands(op, &ops, &self.consts, line)?;
        self.pending.push(Pending { line, inst, fixup });
        Ok(())
    }

    fn cur_section(&self) -> Section {
        self.section.unwrap_or(Section::Text)
    }

    fn directive(&mut self, s: &str, line: usize) -> Result<(), IsaError> {
        let (name, rest) = split_mnemonic(s);
        match name {
            "text" => self.section = Some(Section::Text),
            "data" => self.section = Some(Section::Data),
            "eq" => {
                let parts = split_operands(rest);
                if parts.len() != 2 || !is_ident(parts[0]) {
                    return Err(IsaError::asm(line, ".eq expects `NAME, expr`"));
                }
                let v = eval(parts[1], &self.consts, line)?;
                self.consts.insert(parts[0].to_string(), v);
            }
            "dword" | "word" | "byte" => {
                self.need_data(line)?;
                let width = match name {
                    "dword" => 8,
                    "word" => 4,
                    _ => 1,
                };
                // Data expressions may reference constants and already-defined
                // labels (e.g. a table of pointers to earlier arrays).
                let mut env = self.consts.clone();
                for (k, v) in &self.symbols {
                    env.entry(k.clone()).or_insert(*v as i64);
                }
                for part in split_operands(rest) {
                    let v = eval(part, &env, line)?;
                    self.data.extend_from_slice(&v.to_le_bytes()[..width]);
                }
            }
            "double" => {
                self.need_data(line)?;
                for part in split_operands(rest) {
                    let v: f64 = part
                        .trim()
                        .parse()
                        .map_err(|_| IsaError::asm(line, format!("bad float `{part}`")))?;
                    self.data.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            "zero" | "space" => {
                self.need_data(line)?;
                let n = eval(rest, &self.consts, line)?;
                if n < 0 {
                    return Err(IsaError::asm(line, "negative .zero size"));
                }
                self.data.resize(self.data.len() + n as usize, 0);
            }
            "align" => {
                self.need_data(line)?;
                let n = eval(rest, &self.consts, line)?;
                if n <= 0 || (n & (n - 1)) != 0 {
                    return Err(IsaError::asm(line, ".align expects a power of two"));
                }
                while !self.data.len().is_multiple_of(n as usize) {
                    self.data.push(0);
                }
            }
            other => return Err(IsaError::asm(line, format!("unknown directive `.{other}`"))),
        }
        Ok(())
    }

    fn need_data(&self, line: usize) -> Result<(), IsaError> {
        if self.cur_section() != Section::Data {
            return Err(IsaError::asm(line, "data directive outside .data section"));
        }
        Ok(())
    }
}

/// Parse one real (non-pseudo) instruction's operands into an [`Inst`].
pub(crate) fn parse_operands(
    op: Op,
    ops: &[&str],
    consts: &HashMap<String, i64>,
    line: usize,
) -> Result<(Inst, Option<Fixup>), IsaError> {
    let sig = op.sig();
    // Optional trailing `vm` mask operand on maskable vector formats.
    let mut masked = false;
    let mut ops = ops;
    if op.maskable() && ops.len() == sig.len() + 1 && ops[sig.len()].trim() == "vm" {
        masked = true;
        ops = &ops[..sig.len()];
    }
    if ops.len() != sig.len() {
        return Err(IsaError::asm(
            line,
            format!("`{}` expects {} operand(s), got {}", op.mnemonic(), sig.len(), ops.len()),
        ));
    }

    let mut inst = Inst { op, rd: 0, rs1: 0, rs2: 0, imm: 0, masked };
    let mut fixup = None;
    // Register fields in positional order, per format.
    let fields: &[&str] = match op.format() {
        Format::R0 => &[],
        Format::R1 => &["rd"],
        Format::Rs => &["rs1"],
        Format::R2 | Format::U => &["rd", "rs1"],
        Format::R | Format::I => &["rd", "rs1", "rs2"],
        Format::RR0 => &["rs1", "rs2"],
        Format::B => &["rs1", "rs2"],
        Format::UI | Format::J => &[],
    };
    let mut reg_slot = 0usize;
    let set = |inst: &mut Inst, slot: &mut usize, v: u8| {
        match fields[*slot] {
            "rd" => inst.rd = v,
            "rs1" => inst.rs1 = v,
            _ => inst.rs2 = v,
        }
        *slot += 1;
    };

    for (o, k) in ops.iter().zip(sig.iter()) {
        let o = o.trim();
        match k {
            OperandSig::Ri | OperandSig::Rf | OperandSig::Rv => {
                let want = match k {
                    OperandSig::Ri => 'x',
                    OperandSig::Rf => 'f',
                    _ => 'v',
                };
                let idx = parse_reg_alias(o, line, want)?;
                set(&mut inst, &mut reg_slot, idx);
            }
            OperandSig::Imm => {
                inst.imm = eval(o, consts, line)? as i32;
            }
            OperandSig::Mem => {
                let open = o
                    .find('(')
                    .ok_or_else(|| IsaError::asm(line, format!("expected `off(xN)`, got `{o}`")))?;
                if !o.ends_with(')') {
                    return Err(IsaError::asm(line, format!("expected `off(xN)`, got `{o}`")));
                }
                let off = o[..open].trim();
                inst.imm = if off.is_empty() { 0 } else { eval(off, consts, line)? as i32 };
                let base = parse_reg_alias(o[open + 1..o.len() - 1].trim(), line, 'x')?;
                inst.rs1 = base;
            }
            OperandSig::Lab => {
                if is_ident(o) && !consts.contains_key(o) {
                    fixup = Some(Fixup::Rel(o.to_string()));
                } else {
                    inst.imm = eval(o, consts, line)? as i32;
                }
            }
        }
    }
    Ok((inst, fixup))
}

/// Parse a register token with ABI aliases, checking the register class.
pub(crate) fn parse_reg_alias(tok: &str, line: usize, want: char) -> Result<u8, IsaError> {
    let canonical = match tok {
        "zero" => "x0",
        "ra" => "x31",
        "sp" => "x30",
        t => t,
    };
    match crate::reg::parse_reg(canonical) {
        Some((class, idx)) if class == want => Ok(idx),
        Some((class, _)) => Err(IsaError::asm(
            line,
            format!("expected `{want}` register, got `{tok}` (class `{class}`)"),
        )),
        None => Err(IsaError::asm(line, format!("bad register `{tok}`"))),
    }
}

fn strip_comment(line: &str) -> &str {
    let hash = line.find('#').unwrap_or(line.len());
    let slashes = line.find("//").unwrap_or(line.len());
    &line[..hash.min(slashes)]
}

/// Find the colon terminating a leading label, ignoring colons inside
/// operands (there are none in this ISA, so the first colon wins if it
/// precedes any whitespace-separated operand field containing `(`).
fn find_label(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    // A label must be the first token: no spaces before the colon.
    if s[..colon].chars().any(|c| c.is_whitespace()) {
        None
    } else {
        Some(colon)
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '.')
}

fn split_mnemonic(s: &str) -> (&str, &str) {
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim()),
        None => (s, ""),
    }
}

fn split_operands(s: &str) -> Vec<&str> {
    s.split(',').map(str::trim).collect()
}

#[cfg(test)]
mod tests;
