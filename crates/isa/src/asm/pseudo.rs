//! Pseudo-instruction expansion.

use std::collections::HashMap;

use super::{parse_reg_alias, Fixup};
use crate::asm::expr::eval;
use crate::error::IsaError;
use crate::inst::Inst;
use crate::opcode::Op;

/// True if the mnemonic is a pseudo-instruction handled by [`expand`].
pub fn is_pseudo(mn: &str) -> bool {
    matches!(mn, "li" | "la" | "mv" | "neg" | "beqz" | "bnez" | "ble" | "bgt" | "call" | "ret")
}

type Expanded = Vec<(Inst, Option<Fixup>)>;

/// Expand a pseudo-instruction into real instructions (possibly with label
/// fixups for pass 2).
pub fn expand(
    mn: &str,
    ops: &[&str],
    consts: &HashMap<String, i64>,
    line: usize,
) -> Result<Expanded, IsaError> {
    let arity = |n: usize| -> Result<(), IsaError> {
        if ops.len() != n {
            Err(IsaError::asm(line, format!("`{mn}` expects {n} operand(s), got {}", ops.len())))
        } else {
            Ok(())
        }
    };
    match mn {
        "li" => {
            arity(2)?;
            let rd = parse_reg_alias(ops[0], line, 'x')?;
            let v = eval(ops[1], consts, line)?;
            expand_li(rd, v, line)
        }
        "la" => {
            arity(2)?;
            let rd = parse_reg_alias(ops[0], line, 'x')?;
            let sym = ops[1].trim().to_string();
            Ok(vec![
                (
                    Inst { op: Op::Lui, rd, rs1: 0, rs2: 0, imm: 0, masked: false },
                    Some(Fixup::Hi(sym.clone())),
                ),
                (Inst::i(Op::Ori, rd, rd, 0), Some(Fixup::Lo(sym))),
            ])
        }
        "mv" => {
            arity(2)?;
            let rd = parse_reg_alias(ops[0], line, 'x')?;
            let rs = parse_reg_alias(ops[1], line, 'x')?;
            Ok(vec![(Inst::i(Op::Addi, rd, rs, 0), None)])
        }
        "neg" => {
            arity(2)?;
            let rd = parse_reg_alias(ops[0], line, 'x')?;
            let rs = parse_reg_alias(ops[1], line, 'x')?;
            Ok(vec![(Inst::r(Op::Sub, rd, 0, rs), None)])
        }
        "beqz" | "bnez" => {
            arity(2)?;
            let rs = parse_reg_alias(ops[0], line, 'x')?;
            let op = if mn == "beqz" { Op::Beq } else { Op::Bne };
            Ok(vec![(
                Inst { op, rd: 0, rs1: rs, rs2: 0, imm: 0, masked: false },
                Some(Fixup::Rel(ops[1].trim().to_string())),
            )])
        }
        "ble" | "bgt" => {
            arity(3)?;
            let a = parse_reg_alias(ops[0], line, 'x')?;
            let b = parse_reg_alias(ops[1], line, 'x')?;
            // `ble a, b` == `bge b, a`; `bgt a, b` == `blt b, a`.
            let op = if mn == "ble" { Op::Bge } else { Op::Blt };
            Ok(vec![(
                Inst { op, rd: 0, rs1: b, rs2: a, imm: 0, masked: false },
                Some(Fixup::Rel(ops[2].trim().to_string())),
            )])
        }
        "call" => {
            arity(1)?;
            Ok(vec![(Inst::sys(Op::Jal), Some(Fixup::Rel(ops[0].trim().to_string())))])
        }
        "ret" => {
            let no_operands = ops.is_empty() || (ops.len() == 1 && ops[0].is_empty());
            if !no_operands {
                return Err(IsaError::asm(line, "`ret` takes no operands"));
            }
            Ok(vec![(Inst { op: Op::Jr, rd: 0, rs1: 31, rs2: 0, imm: 0, masked: false }, None)])
        }
        other => Err(IsaError::asm(line, format!("not a pseudo-instruction `{other}`"))),
    }
}

/// Materialize a constant: `addi` when it fits 14 bits, else `lui`+`ori`.
/// Supports the full signed 32-bit range (all simulated addresses fit).
fn expand_li(rd: u8, v: i64, line: usize) -> Result<Expanded, IsaError> {
    if (-8192..=8191).contains(&v) {
        return Ok(vec![(Inst::i(Op::Addi, rd, 0, v as i32), None)]);
    }
    let hi = v >> 13;
    let lo = (v & 0x1FFF) as i32;
    if !(-262144..=262143).contains(&hi) {
        return Err(IsaError::asm(line, format!("`li` constant {v} exceeds 32-bit range")));
    }
    Ok(vec![
        (Inst { op: Op::Lui, rd, rs1: 0, rs2: 0, imm: hi as i32, masked: false }, None),
        (Inst::i(Op::Ori, rd, rd, lo), None),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consts() -> HashMap<String, i64> {
        HashMap::new()
    }

    #[test]
    fn li_small() {
        let e = expand("li", &["x1", "42"], &consts(), 1).unwrap();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].0, Inst::i(Op::Addi, 1, 0, 42));
    }

    #[test]
    fn li_large_reconstructs() {
        for v in [8192i64, -8193, 0x12345678, -0x12345678, i32::MAX as i64, i32::MIN as i64] {
            let e = expand("li", &["x1", &v.to_string()], &consts(), 1).unwrap();
            assert_eq!(e.len(), 2, "for {v}");
            let (lui, ori) = (&e[0].0, &e[1].0);
            assert_eq!(lui.op, Op::Lui);
            assert_eq!(ori.op, Op::Ori);
            // Reconstruct the interpreter's semantics: rd = (hi << 13) | lo.
            let got = ((lui.imm as i64) << 13) | (ori.imm as i64);
            assert_eq!(got, v, "li {v} reconstructed wrong");
            assert!((0..8192).contains(&ori.imm), "lo must be 13-bit non-negative");
        }
    }

    #[test]
    fn li_out_of_range() {
        assert!(expand("li", &["x1", "4294967296"], &consts(), 1).is_err());
    }

    #[test]
    fn branch_pseudos_swap_operands() {
        let e = expand("ble", &["x1", "x2", "loop"], &consts(), 1).unwrap();
        assert_eq!(e[0].0.op, Op::Bge);
        assert_eq!(e[0].0.rs1, 2);
        assert_eq!(e[0].0.rs2, 1);
        let e = expand("bgt", &["x1", "x2", "loop"], &consts(), 1).unwrap();
        assert_eq!(e[0].0.op, Op::Blt);
        assert_eq!(e[0].0.rs1, 2);
    }

    #[test]
    fn ret_is_jr_ra() {
        let e = expand("ret", &[], &consts(), 1).unwrap();
        assert_eq!(e[0].0.op, Op::Jr);
        assert_eq!(e[0].0.rs1, 31);
    }
}
