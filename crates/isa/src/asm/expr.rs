//! Immediate expression evaluation for the assembler.
//!
//! Supported grammar: `term (('+' | '-') term)*` where a term is a decimal
//! integer, a hex integer (`0x...`), a character literal (`'a'`), or a name
//! previously defined with `.eq` (or, in pass 2, a label).

use std::collections::HashMap;

use crate::error::IsaError;

/// Evaluate an immediate expression against a constant/symbol environment.
pub fn eval(expr: &str, env: &HashMap<String, i64>, line: usize) -> Result<i64, IsaError> {
    let expr = expr.trim();
    if expr.is_empty() {
        return Err(IsaError::asm(line, "empty immediate expression"));
    }
    let mut total: i64 = 0;
    let mut sign: i64 = 1;
    let mut rest = expr;
    let mut first = true;
    loop {
        rest = rest.trim_start();
        if !first || rest.starts_with('-') || rest.starts_with('+') {
            if let Some(r) = rest.strip_prefix('-') {
                sign = -1;
                rest = r;
            } else if let Some(r) = rest.strip_prefix('+') {
                sign = 1;
                rest = r;
            } else if !first {
                return Err(IsaError::asm(line, format!("expected + or - in `{expr}`")));
            }
        }
        first = false;
        rest = rest.trim_start();
        let end = rest
            .char_indices()
            .find(|(_, c)| *c == '+' || *c == '-')
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        let (term, next) = rest.split_at(end);
        let term = term.trim();
        if term.is_empty() {
            return Err(IsaError::asm(line, format!("dangling operator in `{expr}`")));
        }
        // wrapping_mul: `-9223372036854775808` parses the magnitude as
        // i64::MIN (two's complement) and negating it must wrap, not trap.
        total = total.wrapping_add(sign.wrapping_mul(parse_term(term, env, line)?));
        rest = next;
        if rest.trim().is_empty() {
            return Ok(total);
        }
    }
}

fn parse_term(term: &str, env: &HashMap<String, i64>, line: usize) -> Result<i64, IsaError> {
    if let Some(hex) = term.strip_prefix("0x").or_else(|| term.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16)
            .map(|v| v as i64)
            .map_err(|_| IsaError::asm(line, format!("bad hex literal `{term}`")));
    }
    if let Some(bin) = term.strip_prefix("0b").or_else(|| term.strip_prefix("0B")) {
        return u64::from_str_radix(bin, 2)
            .map(|v| v as i64)
            .map_err(|_| IsaError::asm(line, format!("bad binary literal `{term}`")));
    }
    if term.starts_with('\'') && term.ends_with('\'') && term.chars().count() == 3 {
        return Ok(term.chars().nth(1).unwrap() as i64);
    }
    if term.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        // Accept the full u64 range (data directives store raw bit
        // patterns); values above i64::MAX wrap to their two's-complement
        // representation.
        return term
            .parse::<i64>()
            .or_else(|_| term.parse::<u64>().map(|v| v as i64))
            .map_err(|_| IsaError::asm(line, format!("bad integer literal `{term}`")));
    }
    env.get(term).copied().ok_or_else(|| IsaError::asm(line, format!("undefined symbol `{term}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, i64)]) -> HashMap<String, i64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn literals() {
        let e = env(&[]);
        assert_eq!(eval("42", &e, 1).unwrap(), 42);
        assert_eq!(eval("-42", &e, 1).unwrap(), -42);
        assert_eq!(eval("0x10", &e, 1).unwrap(), 16);
        assert_eq!(eval("'a'", &e, 1).unwrap(), 97);
    }

    #[test]
    fn arithmetic() {
        let e = env(&[("N", 64), ("BASE", 0x1000)]);
        assert_eq!(eval("N+1", &e, 1).unwrap(), 65);
        assert_eq!(eval("BASE + N - 4", &e, 1).unwrap(), 0x1000 + 60);
        assert_eq!(eval("N + N + N", &e, 1).unwrap(), 192);
        assert_eq!(eval("-N + 1", &e, 1).unwrap(), -63);
    }

    #[test]
    fn extreme_literals_wrap_not_trap() {
        let e = env(&[]);
        assert_eq!(eval("-9223372036854775808", &e, 1).unwrap(), i64::MIN);
        assert_eq!(eval("9223372036854775808", &e, 1).unwrap(), i64::MIN);
        assert_eq!(eval("18446744073709551615", &e, 1).unwrap(), -1);
    }

    #[test]
    fn errors() {
        let e = env(&[]);
        assert!(eval("", &e, 1).is_err());
        assert!(eval("FOO", &e, 1).is_err());
        assert!(eval("1 +", &e, 1).is_err());
        assert!(eval("0xZZ", &e, 1).is_err());
        assert!(eval("1 * 2", &e, 1).is_err()); // * unsupported: parses as bad term
    }
}
