//! Assembler integration tests.

use crate::asm::assemble;
use crate::encode::decode;
use crate::opcode::Op;
use crate::program::{DATA_BASE, TEXT_BASE};

fn ops(src: &str) -> Vec<Op> {
    assemble(src).unwrap().decoded().iter().map(|i| i.op).collect()
}

#[test]
fn empty_program() {
    let p = assemble("").unwrap();
    assert!(p.text.is_empty());
    assert!(p.data.is_empty());
}

#[test]
fn comments_and_blank_lines() {
    let p = assemble("# a comment\n\n   // another\nnop # trailing\n").unwrap();
    assert_eq!(p.text.len(), 1);
}

#[test]
fn basic_arith() {
    let p = assemble("add x1, x2, x3\naddi x4, x1, -7\n").unwrap();
    let d = p.decoded();
    assert_eq!(d[0].op, Op::Add);
    assert_eq!((d[0].rd, d[0].rs1, d[0].rs2), (1, 2, 3));
    assert_eq!(d[1].op, Op::Addi);
    assert_eq!(d[1].imm, -7);
}

#[test]
fn reg_aliases() {
    let p = assemble("add sp, ra, zero\n").unwrap();
    let d = p.decoded();
    assert_eq!((d[0].rd, d[0].rs1, d[0].rs2), (30, 31, 0));
}

#[test]
fn mem_operands() {
    let p = assemble("ld x1, 16(x2)\nsd x3, -8(sp)\nfld f1, (x4)\n").unwrap();
    let d = p.decoded();
    assert_eq!((d[0].rd, d[0].rs1, d[0].imm), (1, 2, 16));
    assert_eq!((d[1].rd, d[1].rs1, d[1].imm), (3, 30, -8));
    assert_eq!((d[2].rd, d[2].rs1, d[2].imm), (1, 4, 0));
}

#[test]
fn forward_and_backward_branches() {
    let src = r#"
        li   x1, 0
        li   x2, 10
    loop:
        addi x1, x1, 1
        blt  x1, x2, loop
        beq  x1, x2, done
        nop
    done:
        halt
    "#;
    let p = assemble(src).unwrap();
    let d = p.decoded();
    // loop: at index 2; blt at index 3 => offset -1
    assert_eq!(d[3].op, Op::Blt);
    assert_eq!(d[3].imm, -1);
    // beq at index 4, done at index 6 => offset +2
    assert_eq!(d[4].imm, 2);
}

#[test]
fn label_addresses() {
    let src = "start:\nnop\nmid: nop\nend:\nhalt\n";
    let p = assemble(src).unwrap();
    assert_eq!(p.symbol("start"), Some(TEXT_BASE));
    assert_eq!(p.symbol("mid"), Some(TEXT_BASE + 4));
    assert_eq!(p.symbol("end"), Some(TEXT_BASE + 8));
}

#[test]
fn duplicate_label_rejected() {
    assert!(assemble("a:\nnop\na:\nnop\n").is_err());
}

#[test]
fn undefined_label_rejected() {
    assert!(assemble("j nowhere\n").is_err());
}

#[test]
fn unknown_mnemonic_rejected() {
    let e = assemble("frobnicate x1, x2\n").unwrap_err();
    assert!(e.to_string().contains("frobnicate"));
}

#[test]
fn wrong_operand_count_rejected() {
    assert!(assemble("add x1, x2\n").is_err());
    assert!(assemble("nop x1\n").is_err());
}

#[test]
fn wrong_register_class_rejected() {
    assert!(assemble("add x1, f2, x3\n").is_err());
    assert!(assemble("vadd.vv v1, v2, x3\n").is_err());
    assert!(assemble("fadd f1, f2, v3\n").is_err());
}

#[test]
fn vector_ops_and_mask() {
    let src = r#"
        setvl   x1, x2
        vld     v1, x3
        vlds    v2, x3, x4
        vldx    v3, x3, v1
        vadd.vv v4, v1, v2
        vadd.vv v5, v1, v2, vm
        vfma.vs v6, v1, f2, vm
        vst     v4, x5
        vseq.vv v1, v2
    "#;
    let p = assemble(src).unwrap();
    let d = p.decoded();
    assert_eq!(d[1].op, Op::Vld);
    assert!(!d[4].masked);
    assert!(d[5].masked);
    assert!(d[6].masked);
    assert_eq!(d[8].op, Op::Vseq);
    assert_eq!((d[8].rs1, d[8].rs2), (1, 2));
}

#[test]
fn mask_on_scalar_op_rejected() {
    assert!(assemble("add x1, x2, x3, vm\n").is_err());
}

#[test]
fn eq_constants() {
    let src = ".eq N, 64\n.eq N2, N+N\nli x1, N2\naddi x2, x0, N\n";
    let p = assemble(src).unwrap();
    let d = p.decoded();
    assert_eq!(d[0].imm, 128);
    assert_eq!(d[1].imm, 64);
}

#[test]
fn data_section_layout() {
    let src = r#"
        .data
    arr:
        .dword 1, 2, 3
    tbl:
        .word 0xdeadbeef
        .byte 1, 2
        .align 8
    big:
        .zero 16
    pi:
        .double 3.25
    "#;
    let p = assemble(src).unwrap();
    assert_eq!(p.symbol("arr"), Some(DATA_BASE));
    assert_eq!(p.symbol("tbl"), Some(DATA_BASE + 24));
    assert_eq!(p.symbol("big"), Some(DATA_BASE + 32));
    assert_eq!(p.symbol("pi"), Some(DATA_BASE + 48));
    assert_eq!(&p.data[0..8], &1u64.to_le_bytes());
    assert_eq!(&p.data[24..28], &0xdeadbeefu32.to_le_bytes());
    assert_eq!(&p.data[48..56], &3.25f64.to_bits().to_le_bytes());
}

#[test]
fn dword_may_reference_earlier_labels() {
    let src = ".data\na:\n.dword 7\nptrs:\n.dword a\n";
    let p = assemble(src).unwrap();
    let lo = p.data[8..16].try_into().map(u64::from_le_bytes).unwrap();
    assert_eq!(lo, DATA_BASE);
}

#[test]
fn la_materializes_addresses() {
    let src = ".data\nbuf:\n.zero 64\n.text\nla x1, buf\nhalt\n";
    let p = assemble(src).unwrap();
    let d = p.decoded();
    assert_eq!(d[0].op, Op::Lui);
    assert_eq!(d[1].op, Op::Ori);
    let addr = ((d[0].imm as i64) << 13) | (d[1].imm as i64);
    assert_eq!(addr as u64, DATA_BASE);
}

#[test]
fn data_directive_in_text_rejected() {
    assert!(assemble(".dword 1\n").is_err());
    assert!(assemble(".text\n.zero 8\n").is_err());
}

#[test]
fn instruction_in_data_rejected() {
    assert!(assemble(".data\nadd x1, x2, x3\n").is_err());
}

#[test]
fn error_reports_line_numbers() {
    let e = assemble("nop\nnop\nbogus\n").unwrap_err();
    assert!(e.to_string().starts_with("line 3"));
}

#[test]
fn call_ret_roundtrip() {
    let src = "call f\nhalt\nf:\nret\n";
    assert_eq!(ops(src), vec![Op::Jal, Op::Halt, Op::Jr]);
    let p = assemble(src).unwrap();
    assert_eq!(p.decoded()[0].imm, 2); // jal forward 2 words
}

#[test]
fn branch_offset_out_of_range_reported() {
    // Distance beyond the 14-bit signed word offset must error, not wrap.
    let mut src = String::from("start:\n");
    for _ in 0..9000 {
        src.push_str("nop\n");
    }
    src.push_str("beq x0, x0, start\n");
    let e = assemble(&src).unwrap_err();
    assert!(e.to_string().contains("out of range"), "got: {e}");
}

#[test]
fn all_encoded_words_decode() {
    let src = r#"
        .eq N, 8
        li      x1, N
        setvl   x2, x1
        vid     v1
        vsplat  v2, x2
        vfsplat v3, f1
        vfma.vv v4, v1, v2
        vredsum x3, v4
        vfredsum f2, v4
        vpopc   x4
        vmset
        vmnot
        barrier
        vltcfg  x1
        region  3
        tid     x5
        nthr    x6
        halt
    "#;
    let p = assemble(src).unwrap();
    for w in &p.text {
        decode(*w).unwrap();
    }
}
