//! The decoded instruction form and its register defs/uses.

use crate::opcode::{Format, Op};
use crate::reg::RegRef;

/// A decoded instruction: an opcode plus raw operand fields.
///
/// Which register file each field names is determined by the opcode's
/// operand signature (see [`Op::sig`]); the flat layout keeps the encoder,
/// decoder, and interpreter compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Destination register field (or source value for stores).
    pub rd: u8,
    /// First source register field.
    pub rs1: u8,
    /// Second source register field.
    pub rs2: u8,
    /// Immediate field (sign-extended to 32 bits as appropriate per format).
    pub imm: i32,
    /// Mask bit: vector operation executes under the mask register.
    pub masked: bool,
}

impl Inst {
    /// A canonical `nop`.
    pub const NOP: Inst = Inst { op: Op::Nop, rd: 0, rs1: 0, rs2: 0, imm: 0, masked: false };

    /// R-format constructor (`rd, rs1, rs2`).
    pub fn r(op: Op, rd: u8, rs1: u8, rs2: u8) -> Self {
        Inst { op, rd, rs1, rs2, imm: 0, masked: false }
    }

    /// I-format constructor (`rd, rs1, imm`).
    pub fn i(op: Op, rd: u8, rs1: u8, imm: i32) -> Self {
        Inst { op, rd, rs1, rs2: 0, imm, masked: false }
    }

    /// Two-register constructor (`rd, rs1`).
    pub fn r2(op: Op, rd: u8, rs1: u8) -> Self {
        Inst { op, rd, rs1, rs2: 0, imm: 0, masked: false }
    }

    /// Opcode-only constructor.
    pub fn sys(op: Op) -> Self {
        Inst { op, rd: 0, rs1: 0, rs2: 0, imm: 0, masked: false }
    }

    /// Mark a vector instruction as executing under the mask register.
    pub fn with_mask(mut self) -> Self {
        self.masked = true;
        self
    }

    /// Registers written (defs) and read (uses) by this instruction.
    ///
    /// `x0` never appears (writes are discarded, reads are constant-ready).
    /// Vector instructions implicitly read the vector-length register and,
    /// when masked, the mask register. This drives the timing models'
    /// dependence tracking, so it must be exact.
    pub fn defs_uses(&self) -> (Vec<RegRef>, Vec<RegRef>) {
        use Op::*;
        let mut defs = Vec::new();
        let mut uses = Vec::new();
        let rd = self.rd;
        let rs1 = self.rs1;
        let rs2 = self.rs2;
        let def_i = |v: &mut Vec<RegRef>, r: u8| {
            if r != 0 {
                v.push(RegRef::I(r));
            }
        };
        let use_i = |v: &mut Vec<RegRef>, r: u8| {
            if r != 0 {
                v.push(RegRef::I(r));
            }
        };

        match self.op {
            Nop | Halt | Barrier | Region => {}
            Tid | Nthr => def_i(&mut defs, rd),
            GetVl => {
                def_i(&mut defs, rd);
                uses.push(RegRef::Vl);
            }
            SetVl => {
                def_i(&mut defs, rd);
                defs.push(RegRef::Vl);
                use_i(&mut uses, rs1);
            }
            VltCfg => use_i(&mut uses, rs1),

            Add | Sub | Mul | Div | Rem | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu => {
                def_i(&mut defs, rd);
                use_i(&mut uses, rs1);
                use_i(&mut uses, rs2);
            }
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti => {
                def_i(&mut defs, rd);
                use_i(&mut uses, rs1);
            }
            Lui => def_i(&mut defs, rd),

            Ld | Lw | Lwu | Lb | Lbu => {
                def_i(&mut defs, rd);
                use_i(&mut uses, rs1);
            }
            Fld => {
                defs.push(RegRef::F(rd));
                use_i(&mut uses, rs1);
            }
            Sd | Sw | Sb => {
                use_i(&mut uses, rd); // store value
                use_i(&mut uses, rs1);
            }
            Fsd => {
                uses.push(RegRef::F(rd));
                use_i(&mut uses, rs1);
            }

            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                use_i(&mut uses, rs1);
                use_i(&mut uses, rs2);
            }
            J => {}
            Jal => defs.push(RegRef::I(31)),
            Jr => use_i(&mut uses, rs1),
            Jalr => {
                def_i(&mut defs, rd);
                use_i(&mut uses, rs1);
            }

            Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax => {
                defs.push(RegRef::F(rd));
                uses.push(RegRef::F(rs1));
                uses.push(RegRef::F(rs2));
            }
            Fma => {
                defs.push(RegRef::F(rd));
                uses.push(RegRef::F(rd));
                uses.push(RegRef::F(rs1));
                uses.push(RegRef::F(rs2));
            }
            Fsqrt | Fneg | Fabs | Fmov => {
                defs.push(RegRef::F(rd));
                uses.push(RegRef::F(rs1));
            }
            Feq | Flt | Fle => {
                def_i(&mut defs, rd);
                uses.push(RegRef::F(rs1));
                uses.push(RegRef::F(rs2));
            }
            FcvtFx => {
                defs.push(RegRef::F(rd));
                use_i(&mut uses, rs1);
            }
            FcvtXf => {
                def_i(&mut defs, rd);
                uses.push(RegRef::F(rs1));
            }

            VaddVV | VsubVV | VmulVV | VandVV | VorVV | VxorVV | VsllVV | VsrlVV | VsraVV
            | VminVV | VmaxVV | VfaddVV | VfsubVV | VfmulVV | VfdivVV | VfminVV | VfmaxVV => {
                defs.push(RegRef::V(rd));
                uses.push(RegRef::V(rs1));
                uses.push(RegRef::V(rs2));
                uses.push(RegRef::Vl);
            }
            VfmaVV => {
                defs.push(RegRef::V(rd));
                uses.push(RegRef::V(rd));
                uses.push(RegRef::V(rs1));
                uses.push(RegRef::V(rs2));
                uses.push(RegRef::Vl);
            }
            VaddVS | VsubVS | VmulVS | VandVS | VorVS | VxorVS | VsllVS | VsrlVS | VsraVS => {
                defs.push(RegRef::V(rd));
                uses.push(RegRef::V(rs1));
                use_i(&mut uses, rs2);
                uses.push(RegRef::Vl);
            }
            VfaddVS | VfsubVS | VfmulVS | VfdivVS => {
                defs.push(RegRef::V(rd));
                uses.push(RegRef::V(rs1));
                uses.push(RegRef::F(rs2));
                uses.push(RegRef::Vl);
            }
            VfmaVS => {
                defs.push(RegRef::V(rd));
                uses.push(RegRef::V(rd));
                uses.push(RegRef::V(rs1));
                uses.push(RegRef::F(rs2));
                uses.push(RegRef::Vl);
            }
            Vfsqrt | Vmv | VcvtFx | VcvtXf => {
                defs.push(RegRef::V(rd));
                uses.push(RegRef::V(rs1));
                uses.push(RegRef::Vl);
            }

            Vseq | Vsne | Vslt | Vsge | Vfeq | Vflt | Vfle => {
                defs.push(RegRef::Vm);
                uses.push(RegRef::V(rs1));
                uses.push(RegRef::V(rs2));
                uses.push(RegRef::Vl);
            }
            Vmnot => {
                defs.push(RegRef::Vm);
                uses.push(RegRef::Vm);
            }
            Vmset => defs.push(RegRef::Vm),
            Vpopc | Vmfirst | Vmgetb => {
                def_i(&mut defs, rd);
                uses.push(RegRef::Vm);
                uses.push(RegRef::Vl);
            }
            Vmsetb => {
                defs.push(RegRef::Vm);
                use_i(&mut uses, rs1);
            }

            Vmerge => {
                defs.push(RegRef::V(rd));
                uses.push(RegRef::V(rs1));
                uses.push(RegRef::V(rs2));
                uses.push(RegRef::Vm);
                uses.push(RegRef::Vl);
            }
            Vid => {
                defs.push(RegRef::V(rd));
                uses.push(RegRef::Vl);
            }
            Vsplat => {
                defs.push(RegRef::V(rd));
                use_i(&mut uses, rs1);
                uses.push(RegRef::Vl);
            }
            Vfsplat => {
                defs.push(RegRef::V(rd));
                uses.push(RegRef::F(rs1));
                uses.push(RegRef::Vl);
            }
            Vextract => {
                def_i(&mut defs, rd);
                uses.push(RegRef::V(rs1));
                use_i(&mut uses, rs2);
            }
            Vfextract => {
                defs.push(RegRef::F(rd));
                uses.push(RegRef::V(rs1));
                use_i(&mut uses, rs2);
            }
            Vinsert => {
                defs.push(RegRef::V(rd));
                uses.push(RegRef::V(rd));
                use_i(&mut uses, rs1);
                use_i(&mut uses, rs2);
            }
            Vfinsert => {
                defs.push(RegRef::V(rd));
                uses.push(RegRef::V(rd));
                use_i(&mut uses, rs1);
                uses.push(RegRef::F(rs2));
            }

            Vredsum | Vredmin | Vredmax => {
                def_i(&mut defs, rd);
                uses.push(RegRef::V(rs1));
                uses.push(RegRef::Vl);
            }
            Vfredsum | Vfredmin | Vfredmax => {
                defs.push(RegRef::F(rd));
                uses.push(RegRef::V(rs1));
                uses.push(RegRef::Vl);
            }

            Vld => {
                defs.push(RegRef::V(rd));
                use_i(&mut uses, rs1);
                uses.push(RegRef::Vl);
            }
            Vlds => {
                defs.push(RegRef::V(rd));
                use_i(&mut uses, rs1);
                use_i(&mut uses, rs2);
                uses.push(RegRef::Vl);
            }
            Vldx => {
                defs.push(RegRef::V(rd));
                use_i(&mut uses, rs1);
                uses.push(RegRef::V(rs2));
                uses.push(RegRef::Vl);
            }
            Vst => {
                uses.push(RegRef::V(rd));
                use_i(&mut uses, rs1);
                uses.push(RegRef::Vl);
            }
            Vsts => {
                uses.push(RegRef::V(rd));
                use_i(&mut uses, rs1);
                use_i(&mut uses, rs2);
                uses.push(RegRef::Vl);
            }
            Vstx => {
                uses.push(RegRef::V(rd));
                use_i(&mut uses, rs1);
                uses.push(RegRef::V(rs2));
                uses.push(RegRef::Vl);
            }
        }

        if self.masked && self.op.class().is_vector() && !uses.contains(&RegRef::Vm) {
            uses.push(RegRef::Vm);
        }
        (defs, uses)
    }

    /// True if this is a control-transfer instruction.
    pub fn is_control(&self) -> bool {
        matches!(self.op.format(), Format::B | Format::J) || matches!(self.op, Op::Jr | Op::Jalr)
    }

    /// True for the self-XOR/self-SUB zeroing idiom (`xor x5, x5, x5`,
    /// `vxor.vv v4, v4, v4`, ...): the result is zero regardless of the
    /// source value, so the "read" of the source is not a real data use.
    /// Static analyses use this to avoid flagging the idiom as a read of
    /// an undefined register.
    pub fn is_zero_idiom(&self) -> bool {
        matches!(self.op, Op::Xor | Op::Sub | Op::VxorVV | Op::VsubVV) && self.rs1 == self.rs2
    }

    /// True if this instruction writes only part of its destination
    /// register (element insert, or a vector write under a mask), so the
    /// previous value of the destination remains partly live.
    pub fn is_partial_def(&self) -> bool {
        matches!(self.op, Op::Vinsert | Op::Vfinsert)
            || (self.masked && self.op.class().is_vector())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Op;

    #[test]
    fn x0_never_appears() {
        let i = Inst::r(Op::Add, 0, 0, 0);
        let (d, u) = i.defs_uses();
        assert!(d.is_empty());
        assert!(u.is_empty());
    }

    #[test]
    fn add_defs_uses() {
        let i = Inst::r(Op::Add, 1, 2, 3);
        let (d, u) = i.defs_uses();
        assert_eq!(d, vec![RegRef::I(1)]);
        assert_eq!(u, vec![RegRef::I(2), RegRef::I(3)]);
    }

    #[test]
    fn store_uses_value_and_base() {
        let i = Inst::i(Op::Sd, 5, 6, 8);
        let (d, u) = i.defs_uses();
        assert!(d.is_empty());
        assert_eq!(u, vec![RegRef::I(5), RegRef::I(6)]);
    }

    #[test]
    fn fma_reads_dest() {
        let i = Inst::r(Op::Fma, 1, 2, 3);
        let (d, u) = i.defs_uses();
        assert_eq!(d, vec![RegRef::F(1)]);
        assert!(u.contains(&RegRef::F(1)));
    }

    #[test]
    fn vector_ops_read_vl() {
        let i = Inst::r(Op::VfaddVV, 1, 2, 3);
        let (_, u) = i.defs_uses();
        assert!(u.contains(&RegRef::Vl));
    }

    #[test]
    fn masked_vector_reads_vm() {
        let i = Inst::r(Op::VaddVV, 1, 2, 3).with_mask();
        let (_, u) = i.defs_uses();
        assert!(u.contains(&RegRef::Vm));
        let plain = Inst::r(Op::VaddVV, 1, 2, 3);
        let (_, u2) = plain.defs_uses();
        assert!(!u2.contains(&RegRef::Vm));
    }

    #[test]
    fn vmerge_reads_vm_once() {
        let i = Inst::r(Op::Vmerge, 1, 2, 3).with_mask();
        let (_, u) = i.defs_uses();
        assert_eq!(u.iter().filter(|r| **r == RegRef::Vm).count(), 1);
    }

    #[test]
    fn setvl_defines_vl() {
        let i = Inst::r2(Op::SetVl, 1, 2);
        let (d, _) = i.defs_uses();
        assert!(d.contains(&RegRef::Vl));
        assert!(d.contains(&RegRef::I(1)));
    }

    #[test]
    fn jal_defines_link() {
        let i = Inst { op: Op::Jal, rd: 0, rs1: 0, rs2: 0, imm: 4, masked: false };
        let (d, _) = i.defs_uses();
        assert_eq!(d, vec![RegRef::I(31)]);
    }

    #[test]
    fn control_detection() {
        assert!(Inst::sys(Op::J).is_control());
        assert!(Inst::r(Op::Beq, 0, 1, 2).is_control());
        assert!(Inst { op: Op::Jr, rs1: 31, rd: 0, rs2: 0, imm: 0, masked: false }.is_control());
        assert!(!Inst::r(Op::Add, 1, 2, 3).is_control());
    }
}
