#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # vlt-isa — the instruction set of the VLT vector processor
//!
//! A from-scratch, Cray-X1-flavoured vector ISA used by the Vector Lane
//! Threading (ICPP 2006) reproduction. The ISA defines:
//!
//! * 32 integer scalar registers (`x0`..`x31`, `x0` hardwired to zero),
//! * 32 floating-point scalar registers (`f0`..`f31`),
//! * 32 vector registers (`v0`..`v31`) of [`MAX_VL`] 64-bit elements,
//! * a vector-length register (`vl`) and a single vector-mask register (`vm`),
//! * the `vltcfg` instruction the paper adds for Vector Lane Threading
//!   (associates the running thread group with a lane partition), and
//! * a `barrier` instruction used by the SPMD threading runtime.
//!
//! All instructions encode to a fixed 32-bit word ([`encode()`]) and a two-pass
//! assembler ([`asm`]) turns readable kernels into [`Program`]s.
//!
//! ```
//! use vlt_isa::asm::assemble;
//! let prog = assemble(r#"
//!     .text
//!     li      x1, 64
//!     setvl   x2, x1          # vl = min(64, MVL)
//!     vid     v1              # v1 = [0, 1, 2, ...]
//!     vadd.vv v2, v1, v1      # v2 = v1 + v1
//!     halt
//! "#).unwrap();
//! assert_eq!(prog.text.len(), 5);
//! ```

pub mod asm;
pub mod disasm;
pub mod encode;
pub mod error;
pub mod inst;
pub mod opcode;
pub mod program;
pub mod reg;
pub mod vltcfg;

pub use disasm::disasm;
pub use encode::{decode, encode};
pub use error::IsaError;
pub use inst::Inst;
pub use opcode::{Format, Op, OpClass, OperandSig, VMemPattern};
pub use program::{Program, DATA_BASE, STACK_BASE, STACK_SIZE, TEXT_BASE};
pub use reg::{FReg, IReg, RegRef, VReg};

/// Maximum hardware vector length: elements per vector register when a single
/// thread owns all lanes (Cray X1: 32 vector registers x 64 64-bit elements).
pub const MAX_VL: usize = 64;
/// Number of integer scalar registers.
pub const NUM_IREGS: usize = 32;
/// Number of floating-point scalar registers.
pub const NUM_FREGS: usize = 32;
/// Number of architectural vector registers.
pub const NUM_VREGS: usize = 32;
