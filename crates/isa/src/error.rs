//! Error types for encoding, decoding, and assembling.

use std::fmt;

/// Errors produced by the ISA layer (encoder, decoder, assembler).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A 32-bit word whose opcode byte does not name any instruction.
    BadOpcode(u8),
    /// An immediate that does not fit the field width of the target format.
    ImmOutOfRange {
        /// Mnemonic of the offending instruction.
        op: &'static str,
        /// The immediate value that did not fit.
        imm: i64,
        /// Field width in bits.
        bits: u32,
    },
    /// A register index outside `0..32`.
    BadRegister(u8),
    /// A mask flag on an instruction that does not accept `, vm`.
    BadMask(&'static str),
    /// Assembler error with source location.
    Asm {
        /// 1-based source line number.
        line: usize,
        /// Human-readable message.
        msg: String,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::BadOpcode(b) => write!(f, "unknown opcode byte {b:#04x}"),
            IsaError::ImmOutOfRange { op, imm, bits } => {
                write!(f, "immediate {imm} does not fit in {bits} bits for `{op}`")
            }
            IsaError::BadRegister(r) => write!(f, "register index {r} out of range"),
            IsaError::BadMask(op) => write!(f, "`{op}` does not accept a `vm` mask operand"),
            IsaError::Asm { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IsaError {}

impl IsaError {
    /// Convenience constructor for assembler errors.
    pub fn asm(line: usize, msg: impl Into<String>) -> Self {
        IsaError::Asm { line, msg: msg.into() }
    }
}
