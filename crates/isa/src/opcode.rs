//! The opcode table: one entry per mnemonic, defining the encoding byte, the
//! instruction format, the assembler operand signature, and the timing class.
//!
//! This table is the single source of truth shared by the encoder, decoder,
//! assembler, disassembler, functional interpreter, and timing models.

/// Binary instruction format. Every instruction is one 32-bit word with the
/// opcode in bits `[31:24]`.
///
/// | format | fields (high to low, after the opcode byte) |
/// |--------|---------------------------------------------|
/// | `R0`   | none                                        |
/// | `R1`   | `rd[23:19]`                                 |
/// | `Rs`   | `rs1[18:14]`                                |
/// | `R2`   | `rd[23:19] rs1[18:14] mask[8]`              |
/// | `R`    | `rd[23:19] rs1[18:14] rs2[13:9] mask[8]`    |
/// | `RR0`  | `rs1[18:14] rs2[13:9]`                      |
/// | `I`    | `rd[23:19] rs1[18:14] imm14[13:0]`          |
/// | `U`    | `rd[23:19] imm19[18:0]`                     |
/// | `UI`   | `imm19[18:0]`                               |
/// | `B`    | `rs1[23:19] rs2[18:14] imm14[13:0]`         |
/// | `J`    | `imm24[23:0]`                               |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // field layouts documented in the table above
pub enum Format {
    R0,
    R1,
    Rs,
    R2,
    R,
    RR0,
    I,
    U,
    UI,
    B,
    J,
}

/// Assembler operand kinds, in source order. Drives both the parser and the
/// disassembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandSig {
    /// Integer scalar register `xN`.
    Ri,
    /// Floating-point scalar register `fN`.
    Rf,
    /// Vector register `vN`.
    Rv,
    /// Plain immediate (decimal, hex, or `.eq` constant).
    Imm,
    /// Memory operand `imm(xN)`; fills `rs1` and `imm`.
    Mem,
    /// Branch/jump target label; assembled to a PC-relative word offset.
    Lab,
}

/// Resource class used by the timing models to pick a functional unit.
///
/// The vector unit has three arithmetic datapaths per lane (the paper's "3
/// arithmetic units"): an add/logical unit (`VAdd`), a multiply unit
/// (`VMul`), and a divide/miscellaneous unit (`VDiv`), plus two memory ports
/// per lane (`VLoad`/`VStore`). `VMask` operations execute in the vector
/// control logic itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU (also simple system reads).
    IntAlu,
    /// Pipelined integer multiply.
    IntMul,
    /// Unpipelined integer divide/remainder.
    IntDiv,
    /// FP add/compare/move class.
    FpAdd,
    /// FP multiply / fused multiply-add class.
    FpMul,
    /// Unpipelined FP divide/square root.
    FpDiv,
    /// Scalar load (int or FP).
    Load,
    /// Scalar store (int or FP).
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump/call/return.
    Jump,
    /// Vector add/logical/shift/compare/merge datapath.
    VAdd,
    /// Vector multiply/FMA datapath.
    VMul,
    /// Vector divide/sqrt/convert/reduction (misc) datapath.
    VDiv,
    /// Mask-register operation executed in the VCL.
    VMask,
    /// Vector load (unit/strided/indexed).
    VLoad,
    /// Vector store (unit/strided/indexed).
    VStore,
    /// System instruction (nop, halt, barrier, vltcfg, region).
    Sys,
}

impl OpClass {
    /// True if this class executes in the vector unit (lanes or VCL).
    pub fn is_vector(self) -> bool {
        matches!(
            self,
            OpClass::VAdd
                | OpClass::VMul
                | OpClass::VDiv
                | OpClass::VMask
                | OpClass::VLoad
                | OpClass::VStore
        )
    }

    /// True if this class accesses memory.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store | OpClass::VLoad | OpClass::VStore)
    }
}

/// Address pattern of a vector memory instruction, as classified by the
/// static DLP analyzer (Table 4's stride column). `Unit` accesses are
/// bank-friendly on any power-of-two interleave; `Strided` accesses hit a
/// reduced bank set whenever the element stride shares a factor with the
/// interleave; `Indexed` gather/scatter addresses are data-dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VMemPattern {
    /// Unit-stride (`vld`/`vst`): consecutive 8-byte elements.
    Unit,
    /// Constant byte stride from a scalar register (`vlds`/`vsts`).
    Strided,
    /// Per-element byte indices from a vector register (`vldx`/`vstx`).
    Indexed,
}

impl Op {
    /// True if this instruction accepts a trailing `, vm` mask operand:
    /// vector-class ops in the `R`/`R2` formats. The encoder rejects and
    /// the decoder ignores the mask bit on everything else, so the flag
    /// can never appear where the assembler could not have written it.
    pub fn maskable(self) -> bool {
        matches!(self.format(), Format::R | Format::R2) && self.class().is_vector()
    }

    /// The address pattern of a vector memory instruction, or `None` for
    /// everything that is not a vector load/store.
    pub fn vmem_pattern(self) -> Option<VMemPattern> {
        match self {
            Op::Vld | Op::Vst => Some(VMemPattern::Unit),
            Op::Vlds | Op::Vsts => Some(VMemPattern::Strided),
            Op::Vldx | Op::Vstx => Some(VMemPattern::Indexed),
            _ => None,
        }
    }

    /// True if this instruction writes a *scalar* register whose value is
    /// derived from vector-lane or FP state (reductions, mask population
    /// counts, element extracts, FP compares/converts). These are the ops
    /// through which data-dependent values can reach scalar control flow,
    /// which is what the static DLP walker must track to stay exact.
    pub fn scalar_result_from_lanes(self) -> bool {
        matches!(
            self,
            Op::Vredsum
                | Op::Vredmin
                | Op::Vredmax
                | Op::Vpopc
                | Op::Vmfirst
                | Op::Vmgetb
                | Op::Vextract
                | Op::FcvtXf
                | Op::Feq
                | Op::Flt
                | Op::Fle
        )
    }
}

macro_rules! define_ops {
    ($(($variant:ident, $code:literal, $mn:literal, $fmt:ident, [$($sig:ident),*], $class:ident)),* $(,)?) => {
        /// Every instruction mnemonic in the ISA. The discriminant is the
        /// opcode byte stored in bits `[31:24]` of the encoded word; see the
        /// table in this module's source for format/signature/class.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        #[allow(missing_docs)]
        pub enum Op {
            $($variant = $code),*
        }

        impl Op {
            /// All opcodes, in table order (useful for exhaustive tests).
            pub const ALL: &'static [Op] = &[$(Op::$variant),*];

            /// The assembler mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self { $(Op::$variant => $mn),* }
            }

            /// Decode an opcode byte.
            pub fn from_u8(b: u8) -> Option<Op> {
                match b { $($code => Some(Op::$variant),)* _ => None }
            }

            /// Look up an opcode by mnemonic (exact, lowercase).
            pub fn from_mnemonic(s: &str) -> Option<Op> {
                match s { $($mn => Some(Op::$variant),)* _ => None }
            }

            /// The binary format of this instruction.
            pub fn format(self) -> Format {
                match self { $(Op::$variant => Format::$fmt),* }
            }

            /// The assembler operand signature.
            pub fn sig(self) -> &'static [OperandSig] {
                match self { $(Op::$variant => &[$(OperandSig::$sig),*]),* }
            }

            /// The timing/resource class.
            pub fn class(self) -> OpClass {
                match self { $(Op::$variant => OpClass::$class),* }
            }
        }
    };
}

define_ops! {
    // ---- system ----
    (Nop,      0x00, "nop",      R0, [],             Sys),
    (Halt,     0x01, "halt",     R0, [],             Sys),
    (Barrier,  0x02, "barrier",  R0, [],             Sys),
    (Tid,      0x03, "tid",      R1, [Ri],           IntAlu),
    (Nthr,     0x04, "nthr",     R1, [Ri],           IntAlu),
    (VltCfg,   0x05, "vltcfg",   Rs, [Ri],           Sys),
    (SetVl,    0x06, "setvl",    R2, [Ri, Ri],       IntAlu),
    (GetVl,    0x07, "getvl",    R1, [Ri],           IntAlu),
    (Region,   0x08, "region",   UI, [Imm],          Sys),

    // ---- integer register-register ----
    (Add,  0x10, "add",  R, [Ri, Ri, Ri], IntAlu),
    (Sub,  0x11, "sub",  R, [Ri, Ri, Ri], IntAlu),
    (Mul,  0x12, "mul",  R, [Ri, Ri, Ri], IntMul),
    (Div,  0x13, "div",  R, [Ri, Ri, Ri], IntDiv),
    (Rem,  0x14, "rem",  R, [Ri, Ri, Ri], IntDiv),
    (And,  0x15, "and",  R, [Ri, Ri, Ri], IntAlu),
    (Or,   0x16, "or",   R, [Ri, Ri, Ri], IntAlu),
    (Xor,  0x17, "xor",  R, [Ri, Ri, Ri], IntAlu),
    (Sll,  0x18, "sll",  R, [Ri, Ri, Ri], IntAlu),
    (Srl,  0x19, "srl",  R, [Ri, Ri, Ri], IntAlu),
    (Sra,  0x1A, "sra",  R, [Ri, Ri, Ri], IntAlu),
    (Slt,  0x1B, "slt",  R, [Ri, Ri, Ri], IntAlu),
    (Sltu, 0x1C, "sltu", R, [Ri, Ri, Ri], IntAlu),

    // ---- integer register-immediate ----
    (Addi, 0x20, "addi", I, [Ri, Ri, Imm], IntAlu),
    (Andi, 0x21, "andi", I, [Ri, Ri, Imm], IntAlu),
    (Ori,  0x22, "ori",  I, [Ri, Ri, Imm], IntAlu),
    (Xori, 0x23, "xori", I, [Ri, Ri, Imm], IntAlu),
    (Slli, 0x24, "slli", I, [Ri, Ri, Imm], IntAlu),
    (Srli, 0x25, "srli", I, [Ri, Ri, Imm], IntAlu),
    (Srai, 0x26, "srai", I, [Ri, Ri, Imm], IntAlu),
    (Slti, 0x27, "slti", I, [Ri, Ri, Imm], IntAlu),
    (Lui,  0x28, "lui",  U, [Ri, Imm],     IntAlu),

    // ---- scalar memory ----
    (Ld,  0x30, "ld",  I, [Ri, Mem], Load),
    (Lw,  0x31, "lw",  I, [Ri, Mem], Load),
    (Lwu, 0x32, "lwu", I, [Ri, Mem], Load),
    (Lb,  0x33, "lb",  I, [Ri, Mem], Load),
    (Lbu, 0x34, "lbu", I, [Ri, Mem], Load),
    (Sd,  0x35, "sd",  I, [Ri, Mem], Store),
    (Sw,  0x36, "sw",  I, [Ri, Mem], Store),
    (Sb,  0x37, "sb",  I, [Ri, Mem], Store),
    (Fld, 0x38, "fld", I, [Rf, Mem], Load),
    (Fsd, 0x39, "fsd", I, [Rf, Mem], Store),

    // ---- control flow ----
    (Beq,  0x40, "beq",  B,  [Ri, Ri, Lab], Branch),
    (Bne,  0x41, "bne",  B,  [Ri, Ri, Lab], Branch),
    (Blt,  0x42, "blt",  B,  [Ri, Ri, Lab], Branch),
    (Bge,  0x43, "bge",  B,  [Ri, Ri, Lab], Branch),
    (Bltu, 0x44, "bltu", B,  [Ri, Ri, Lab], Branch),
    (Bgeu, 0x45, "bgeu", B,  [Ri, Ri, Lab], Branch),
    (J,    0x46, "j",    J,  [Lab],         Jump),
    (Jal,  0x47, "jal",  J,  [Lab],         Jump),
    (Jr,   0x48, "jr",   Rs, [Ri],          Jump),
    (Jalr, 0x49, "jalr", R2, [Ri, Ri],      Jump),

    // ---- scalar floating point ----
    (Fadd,   0x50, "fadd",     R,  [Rf, Rf, Rf], FpAdd),
    (Fsub,   0x51, "fsub",     R,  [Rf, Rf, Rf], FpAdd),
    (Fmul,   0x52, "fmul",     R,  [Rf, Rf, Rf], FpMul),
    (Fdiv,   0x53, "fdiv",     R,  [Rf, Rf, Rf], FpDiv),
    (Fmin,   0x54, "fmin",     R,  [Rf, Rf, Rf], FpAdd),
    (Fmax,   0x55, "fmax",     R,  [Rf, Rf, Rf], FpAdd),
    (Fma,    0x56, "fma",      R,  [Rf, Rf, Rf], FpMul), // rd += rs1 * rs2
    (Fsqrt,  0x57, "fsqrt",    R2, [Rf, Rf],     FpDiv),
    (Fneg,   0x58, "fneg",     R2, [Rf, Rf],     FpAdd),
    (Fabs,   0x59, "fabs",     R2, [Rf, Rf],     FpAdd),
    (Fmov,   0x5A, "fmov",     R2, [Rf, Rf],     FpAdd),
    (Feq,    0x5B, "feq",      R,  [Ri, Rf, Rf], FpAdd),
    (Flt,    0x5C, "flt",      R,  [Ri, Rf, Rf], FpAdd),
    (Fle,    0x5D, "fle",      R,  [Ri, Rf, Rf], FpAdd),
    (FcvtFx, 0x5E, "fcvt.f.x", R2, [Rf, Ri],     FpAdd), // int -> fp
    (FcvtXf, 0x5F, "fcvt.x.f", R2, [Ri, Rf],     FpAdd), // fp -> int (truncate)

    // ---- vector integer, vector-vector ----
    (VaddVV, 0x60, "vadd.vv", R, [Rv, Rv, Rv], VAdd),
    (VsubVV, 0x61, "vsub.vv", R, [Rv, Rv, Rv], VAdd),
    (VmulVV, 0x62, "vmul.vv", R, [Rv, Rv, Rv], VMul),
    (VandVV, 0x63, "vand.vv", R, [Rv, Rv, Rv], VAdd),
    (VorVV,  0x64, "vor.vv",  R, [Rv, Rv, Rv], VAdd),
    (VxorVV, 0x65, "vxor.vv", R, [Rv, Rv, Rv], VAdd),
    (VsllVV, 0x66, "vsll.vv", R, [Rv, Rv, Rv], VAdd),
    (VsrlVV, 0x67, "vsrl.vv", R, [Rv, Rv, Rv], VAdd),
    (VsraVV, 0x68, "vsra.vv", R, [Rv, Rv, Rv], VAdd),
    (VminVV, 0x69, "vmin.vv", R, [Rv, Rv, Rv], VAdd),
    (VmaxVV, 0x6A, "vmax.vv", R, [Rv, Rv, Rv], VAdd),

    // ---- vector integer, vector-scalar (scalar operand from xN) ----
    (VaddVS, 0x70, "vadd.vs", R, [Rv, Rv, Ri], VAdd),
    (VsubVS, 0x71, "vsub.vs", R, [Rv, Rv, Ri], VAdd),
    (VmulVS, 0x72, "vmul.vs", R, [Rv, Rv, Ri], VMul),
    (VandVS, 0x73, "vand.vs", R, [Rv, Rv, Ri], VAdd),
    (VorVS,  0x74, "vor.vs",  R, [Rv, Rv, Ri], VAdd),
    (VxorVS, 0x75, "vxor.vs", R, [Rv, Rv, Ri], VAdd),
    (VsllVS, 0x76, "vsll.vs", R, [Rv, Rv, Ri], VAdd),
    (VsrlVS, 0x77, "vsrl.vs", R, [Rv, Rv, Ri], VAdd),
    (VsraVS, 0x78, "vsra.vs", R, [Rv, Rv, Ri], VAdd),

    // ---- vector floating point, vector-vector ----
    (VfaddVV, 0x80, "vfadd.vv", R,  [Rv, Rv, Rv], VAdd),
    (VfsubVV, 0x81, "vfsub.vv", R,  [Rv, Rv, Rv], VAdd),
    (VfmulVV, 0x82, "vfmul.vv", R,  [Rv, Rv, Rv], VMul),
    (VfdivVV, 0x83, "vfdiv.vv", R,  [Rv, Rv, Rv], VDiv),
    (VfmaVV,  0x84, "vfma.vv",  R,  [Rv, Rv, Rv], VMul), // vd += vs1 * vs2
    (VfminVV, 0x85, "vfmin.vv", R,  [Rv, Rv, Rv], VAdd),
    (VfmaxVV, 0x86, "vfmax.vv", R,  [Rv, Rv, Rv], VAdd),
    (Vfsqrt,  0x87, "vfsqrt.v", R2, [Rv, Rv],     VDiv),

    // ---- vector floating point, vector-scalar (scalar operand from fN) ----
    (VfaddVS, 0x90, "vfadd.vs", R, [Rv, Rv, Rf], VAdd),
    (VfsubVS, 0x91, "vfsub.vs", R, [Rv, Rv, Rf], VAdd),
    (VfmulVS, 0x92, "vfmul.vs", R, [Rv, Rv, Rf], VMul),
    (VfdivVS, 0x93, "vfdiv.vs", R, [Rv, Rv, Rf], VDiv),
    (VfmaVS,  0x94, "vfma.vs",  R, [Rv, Rv, Rf], VMul), // vd += vs1 * fs2

    // ---- vector compares (write the mask register) ----
    (Vseq, 0xA0, "vseq.vv", RR0, [Rv, Rv], VAdd),
    (Vsne, 0xA1, "vsne.vv", RR0, [Rv, Rv], VAdd),
    (Vslt, 0xA2, "vslt.vv", RR0, [Rv, Rv], VAdd),
    (Vsge, 0xA3, "vsge.vv", RR0, [Rv, Rv], VAdd),
    (Vfeq, 0xA4, "vfeq.vv", RR0, [Rv, Rv], VAdd),
    (Vflt, 0xA5, "vflt.vv", RR0, [Rv, Rv], VAdd),
    (Vfle, 0xA6, "vfle.vv", RR0, [Rv, Rv], VAdd),

    // ---- mask register ----
    (Vmnot,   0xA8, "vmnot",   R0, [],   VMask),
    (Vmset,   0xA9, "vmset",   R0, [],   VMask),
    (Vpopc,   0xAA, "vpopc",   R1, [Ri], VMask),
    (Vmfirst, 0xAB, "vmfirst", R1, [Ri], VMask),
    (Vmgetb,  0xAC, "vmgetb",  R1, [Ri], VMask),
    (Vmsetb,  0xAD, "vmsetb",  Rs, [Ri], VMask),

    // ---- vector misc ----
    (Vmv,      0xB1, "vmv",      R2, [Rv, Rv],     VAdd),
    (Vmerge,   0xB2, "vmerge",   R,  [Rv, Rv, Rv], VAdd),
    (Vid,      0xB3, "vid",      R1, [Rv],         VAdd),
    (Vsplat,   0xB4, "vsplat",   R2, [Rv, Ri],     VAdd),
    (Vfsplat,  0xB5, "vfsplat",  R2, [Rv, Rf],     VAdd),
    (Vextract, 0xB6, "vextract", R,  [Ri, Rv, Ri], VDiv),
    (Vfextract,0xB7, "vfextract",R,  [Rf, Rv, Ri], VDiv),
    (Vinsert,  0xB8, "vinsert",  R,  [Rv, Ri, Ri], VDiv),
    (Vfinsert, 0xB9, "vfinsert", R,  [Rv, Ri, Rf], VDiv),
    (VcvtFx,   0xBA, "vcvt.f.x", R2, [Rv, Rv],     VDiv),
    (VcvtXf,   0xBB, "vcvt.x.f", R2, [Rv, Rv],     VDiv),

    // ---- vector reductions (scalar destination) ----
    (Vredsum,  0xC0, "vredsum",  R2, [Ri, Rv], VDiv),
    (Vredmin,  0xC1, "vredmin",  R2, [Ri, Rv], VDiv),
    (Vredmax,  0xC2, "vredmax",  R2, [Ri, Rv], VDiv),
    (Vfredsum, 0xC3, "vfredsum", R2, [Rf, Rv], VDiv),
    (Vfredmin, 0xC4, "vfredmin", R2, [Rf, Rv], VDiv),
    (Vfredmax, 0xC5, "vfredmax", R2, [Rf, Rv], VDiv),

    // ---- vector memory ----
    (Vld,  0xD0, "vld",  R2, [Rv, Ri],     VLoad),  // unit stride
    (Vlds, 0xD1, "vlds", R,  [Rv, Ri, Ri], VLoad),  // stride in bytes (rs2)
    (Vldx, 0xD2, "vldx", R,  [Rv, Ri, Rv], VLoad),  // gather, byte indices (vs2)
    (Vst,  0xD3, "vst",  R2, [Rv, Ri],     VStore), // unit stride
    (Vsts, 0xD4, "vsts", R,  [Rv, Ri, Ri], VStore), // strided scatter
    (Vstx, 0xD5, "vstx", R,  [Rv, Ri, Rv], VStore), // indexed scatter
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn opcode_bytes_are_unique() {
        let mut seen = HashSet::new();
        for &op in Op::ALL {
            assert!(seen.insert(op as u8), "duplicate opcode byte for {op:?}");
        }
    }

    #[test]
    fn mnemonics_are_unique_and_lowercase() {
        let mut seen = HashSet::new();
        for &op in Op::ALL {
            let mn = op.mnemonic();
            assert!(seen.insert(mn), "duplicate mnemonic {mn}");
            assert_eq!(mn, mn.to_lowercase());
        }
    }

    #[test]
    fn byte_roundtrip() {
        for &op in Op::ALL {
            assert_eq!(Op::from_u8(op as u8), Some(op));
        }
        assert_eq!(Op::from_u8(0xFF), None);
    }

    #[test]
    fn mnemonic_roundtrip() {
        for &op in Op::ALL {
            assert_eq!(Op::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Op::from_mnemonic("bogus"), None);
    }

    #[test]
    fn sig_arity_matches_format() {
        for &op in Op::ALL {
            let n = op.sig().len();
            match op.format() {
                Format::R0 => assert_eq!(n, 0, "{op:?}"),
                Format::R1 | Format::Rs | Format::UI | Format::J => assert_eq!(n, 1, "{op:?}"),
                Format::R2 | Format::U | Format::RR0 => assert_eq!(n, 2, "{op:?}"),
                Format::R | Format::B => assert_eq!(n, 3, "{op:?}"),
                // memory ops: reg + mem operand
                Format::I => assert!(n == 2 || n == 3, "{op:?}"),
            }
        }
    }

    #[test]
    fn vector_classes_marked_vector() {
        assert!(Op::VaddVV.class().is_vector());
        assert!(Op::Vld.class().is_vector());
        assert!(Op::Vpopc.class().is_vector());
        assert!(!Op::Add.class().is_vector());
        assert!(!Op::Fadd.class().is_vector());
    }

    #[test]
    fn mem_classes() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::VStore.is_mem());
        assert!(!OpClass::VAdd.is_mem());
    }
}
